// Package clean implements the paper's data-cleaning stage (§IV-B):
// repairing route-point ordering corrupted in transit and filtering the
// most obvious measurement errors.
//
// A trip's points carry two candidate orderings — device sequence id
// and timestamp — and transmission latency or device glitches can make
// them disagree. The paper's rule: sort the points both ways, compute
// the total trip distance under each ordering, and judge the shorter
// one correct (a wrong ordering makes the trajectory zigzag, which can
// only add length). All point properties are then realigned to the
// chosen sequence so that ids, timestamps and cumulative measurements
// increase monotonically.
package clean

import (
	"math"
	"sort"
	"time"

	"repro/internal/geo"
	"repro/internal/trace"
)

// Order identifies which candidate ordering the cleaner selected.
type Order int

// Ordering choices.
const (
	OrderByID Order = iota
	OrderByTime
)

// String returns the order name.
func (o Order) String() string {
	if o == OrderByTime {
		return "timestamp"
	}
	return "id"
}

// Config tunes the validity filters.
type Config struct {
	// MaxSpeedKmh drops points implying an impossible speed from their
	// predecessor (GPS spikes). Default 150.
	MaxSpeedKmh float64
	// Area drops points outside a plausible region when non-empty.
	Area geo.Rect
}

func (c Config) withDefaults() Config {
	// !(x > 0) rather than x <= 0: a NaN threshold must select the
	// default too, not silently disable the spike filter (every
	// "v > NaN" comparison is false). +Inf remains an explicit opt-out.
	if !(c.MaxSpeedKmh > 0) {
		c.MaxSpeedKmh = 150
	}
	return c
}

// DropStats breaks the dropped-point count down by removal reason —
// the cleaning stage's contribution to the pipeline's drop-reason
// lineage. The row and columnar cleaners attribute identically (the
// filters apply in the same precedence: finiteness, area, duplicate
// id, spike), so the differential tests hold field by field.
type DropStats struct {
	NonFinite   int `json:"non_finite"`   // NaN/Inf field or zero timestamp
	OutOfArea   int `json:"out_of_area"`  // outside the configured area
	DuplicateID int `json:"duplicate_id"` // repeated device sequence id
	Spike       int `json:"spike"`        // implied speed impossible
}

// Total sums the per-reason counts.
func (d DropStats) Total() int { return d.NonFinite + d.OutOfArea + d.DuplicateID + d.Spike }

// Merge adds o into d.
func (d *DropStats) Merge(o DropStats) {
	d.NonFinite += o.NonFinite
	d.OutOfArea += o.OutOfArea
	d.DuplicateID += o.DuplicateID
	d.Spike += o.Spike
}

// Result reports what cleaning did to one trip.
type Result struct {
	Trip         *trace.Trip // cleaned copy; nil when nothing survived
	ChosenOrder  Order
	LengthByID   float64   // trip length under id ordering, metres
	LengthByTime float64   // trip length under timestamp ordering, metres
	Reordered    bool      // arrival order differed from the chosen order
	Dropped      int       // points removed by validity filters (== Drops.Total())
	Drops        DropStats // the same count broken down by reason
}

// Repair cleans one trip. The input is not modified.
//
// Repair is idempotent: running it on its own output changes nothing
// (the differential tests rely on this). Idempotence is not automatic —
// realignment re-assigns the sorted timestamp multiset to the chosen
// point order, which can create point adjacencies whose implied speed
// exceeds MaxSpeedKmh even though every original adjacency passed the
// spike filter. Repair therefore re-runs the validity filter over the
// realigned result until a pass drops nothing (the count strictly
// decreases, so the loop terminates).
func Repair(t *trace.Trip, cfg Config) Result {
	cfg = cfg.withDefaults()
	var drops DropStats
	pts := filterValid(t.Points, cfg, &drops)
	if len(pts) == 0 {
		return Result{Dropped: drops.Total(), Drops: drops}
	}

	byID := append([]trace.RoutePoint(nil), pts...)
	sort.SliceStable(byID, func(i, j int) bool { return byID[i].PointID < byID[j].PointID })
	byTime := append([]trace.RoutePoint(nil), pts...)
	sort.SliceStable(byTime, func(i, j int) bool { return byTime[i].Time.Before(byTime[j].Time) })

	lenID := trace.PathLength(byID)
	lenTime := trace.PathLength(byTime)

	chosen := byID
	order := OrderByID
	if lenTime < lenID {
		chosen = byTime
		order = OrderByTime
	}

	reordered := false
	for i := range pts {
		if pts[i].PointID != chosen[i].PointID {
			reordered = true
			break
		}
	}

	// Fixpoint: realignment can surface new spikes (see the doc
	// comment); keep filtering + realigning until stable. After the
	// first realign both candidate orderings coincide with position
	// order, so the ordering decision is never revisited.
	cleaned := realign(chosen)
	for {
		again := filterValid(cleaned, cfg, &drops)
		if len(again) == len(cleaned) {
			break
		}
		if len(again) == 0 {
			return Result{
				ChosenOrder:  order,
				LengthByID:   lenID,
				LengthByTime: lenTime,
				Reordered:    reordered,
				Dropped:      drops.Total(),
				Drops:        drops,
			}
		}
		cleaned = realign(again)
	}

	out := t.Clone()
	out.Points = cleaned
	// Realignment assigned the sorted timestamp multiset along the
	// sequence, so the result is time-ordered by construction.
	out.MarkTimeSorted()
	return Result{
		Trip:         out,
		ChosenOrder:  order,
		LengthByID:   lenID,
		LengthByTime: lenTime,
		Reordered:    reordered,
		Dropped:      drops.Total(),
		Drops:        drops,
	}
}

// RepairAll cleans a batch. Every trip yields a Result — including
// trips with no surviving points (Trip == nil), whose drop counts
// would otherwise vanish from the lineage accounting. Use Trips to
// extract the survivors.
func RepairAll(trips []*trace.Trip, cfg Config) []Result {
	out := make([]Result, 0, len(trips))
	for _, t := range trips {
		out = append(out, Repair(t, cfg))
	}
	return out
}

// Trips extracts the cleaned trips from a batch of results.
func Trips(results []Result) []*trace.Trip {
	out := make([]*trace.Trip, 0, len(results))
	for _, r := range results {
		if r.Trip != nil {
			out = append(out, r.Trip)
		}
	}
	return out
}

// filterValid drops records with non-finite fields, out-of-area
// positions, duplicate point ids, and GPS spikes implying impossible
// speed, accumulating each removal's reason into drops.
func filterValid(pts []trace.RoutePoint, cfg Config, drops *DropStats) []trace.RoutePoint {
	seen := make(map[int]bool, len(pts))
	out := make([]trace.RoutePoint, 0, len(pts))
	for _, p := range pts {
		if !finite(p.Pos.X) || !finite(p.Pos.Y) || !finite(p.SpeedKmh) ||
			!finite(p.FuelMl) || !finite(p.DistM) || p.Time.IsZero() {
			drops.NonFinite++
			continue
		}
		if cfg.Area.Area() > 0 && !cfg.Area.Contains(p.Pos) {
			drops.OutOfArea++
			continue
		}
		if seen[p.PointID] {
			drops.DuplicateID++
			continue
		}
		seen[p.PointID] = true
		out = append(out, p)
	}
	if len(out) < 2 {
		return out
	}
	// Spike filter in timestamp order: a point requiring impossible
	// speed from its accepted predecessor is discarded.
	byTime := append([]trace.RoutePoint(nil), out...)
	sort.SliceStable(byTime, func(i, j int) bool { return byTime[i].Time.Before(byTime[j].Time) })
	bad := map[int]bool{}
	last := byTime[0]
	for _, p := range byTime[1:] {
		dt := p.Time.Sub(last.Time).Seconds()
		if dt > 0.5 {
			v := p.Pos.Dist(last.Pos) / dt * 3.6
			if v > cfg.MaxSpeedKmh {
				bad[p.PointID] = true
				continue // do not advance last: compare next to the anchor
			}
		}
		last = p
	}
	if len(bad) == 0 {
		return out
	}
	drops.Spike += len(bad)
	kept := out[:0]
	for _, p := range out {
		if !bad[p.PointID] {
			kept = append(kept, p)
		}
	}
	return kept
}

func finite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

// realign rewrites the chosen sequence so every keyed property
// increases monotonically: point ids are renumbered 1..n and the
// timestamp and cumulative fuel/distance multisets are re-assigned in
// ascending order along the sequence.
func realign(pts []trace.RoutePoint) []trace.RoutePoint {
	n := len(pts)
	out := append([]trace.RoutePoint(nil), pts...)

	times := make([]int64, n)
	fuels := make([]float64, n)
	dists := make([]float64, n)
	for i, p := range pts {
		times[i] = p.Time.UnixMilli()
		fuels[i] = p.FuelMl
		dists[i] = p.DistM
	}
	sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
	sort.Float64s(fuels)
	sort.Float64s(dists)
	for i := range out {
		out[i].PointID = i + 1
		out[i].Time = time.UnixMilli(times[i]).UTC()
		out[i].FuelMl = fuels[i]
		out[i].DistM = dists[i]
	}
	return out
}
