package clean

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"repro/internal/geo"
	"repro/internal/trace"
)

// randomCorruptTrip builds a trip with the corruption modes Repair
// exists to fix: arrival shuffles, duplicated ids, GPS spikes,
// non-finite fields, out-of-area points, timestamp ties and
// sub-millisecond noise.
func randomCorruptTrip(rng *rand.Rand, id int64) *trace.Trip {
	n := 2 + rng.Intn(30)
	tr := &trace.Trip{ID: id, CarID: 1 + rng.Intn(3)}
	for i := 0; i < n; i++ {
		p := trace.RoutePoint{
			PointID:  i + 1,
			TripID:   id,
			Pos:      geo.V(float64(i)*100+rng.Float64(), rng.Float64()*50),
			Time:     t0.Add(time.Duration(i)*30*time.Second + time.Duration(rng.Intn(1e6))*time.Nanosecond),
			SpeedKmh: rng.Float64() * 80,
			FuelMl:   float64(i) * 8,
			DistM:    float64(i) * 100,
		}
		switch rng.Intn(12) {
		case 0: // spike
			p.Pos = geo.V(p.Pos.X+1e6, p.Pos.Y)
		case 1: // duplicate id
			if i > 0 {
				p.PointID = 1 + rng.Intn(i)
			}
		case 2: // non-finite field
			switch rng.Intn(3) {
			case 0:
				p.Pos.X = math.NaN()
			case 1:
				p.SpeedKmh = math.Inf(1)
			case 2:
				p.FuelMl = math.NaN()
			}
		case 3: // timestamp tie with a neighbour
			if i > 0 {
				p.Time = tr.Points[i-1].Time
			}
		case 4: // timestamp glitch: far in the past of the trip
			p.Time = t0.Add(-time.Duration(rng.Intn(3600)) * time.Second)
		case 5: // way out of any plausible area
			p.Pos = geo.V(5e5, -5e5)
		}
		tr.Points = append(tr.Points, p)
	}
	rng.Shuffle(len(tr.Points), func(i, j int) {
		tr.Points[i], tr.Points[j] = tr.Points[j], tr.Points[i]
	})
	return tr
}

func compareRepair(t *testing.T, tr *trace.Trip, cfg Config) {
	t.Helper()
	want := Repair(tr, cfg)

	a := trace.NewArena(0)
	var s Scratch
	v, err := a.AppendTrip(tr)
	if err != nil {
		t.Fatalf("trip %d not columnar-representable: %v", tr.ID, err)
	}
	got := RepairColumns(v, cfg, a, &s)

	if got.ChosenOrder != want.ChosenOrder || got.Reordered != want.Reordered ||
		got.Dropped != want.Dropped || got.Drops != want.Drops ||
		math.Float64bits(got.LengthByID) != math.Float64bits(want.LengthByID) ||
		math.Float64bits(got.LengthByTime) != math.Float64bits(want.LengthByTime) {
		t.Fatalf("trip %d stats diverge:\ncolumnar %+v\nlegacy   %+v", tr.ID, got, want)
	}
	if got.Drops.Total() != got.Dropped {
		t.Fatalf("trip %d: Drops %+v does not sum to Dropped %d", tr.ID, got.Drops, got.Dropped)
	}
	if want.Trip == nil {
		if got.Trip.N != 0 {
			t.Fatalf("trip %d: legacy dropped everything, columnar kept %d points", tr.ID, got.Trip.N)
		}
		return
	}
	if got.Trip.N != len(want.Trip.Points) {
		t.Fatalf("trip %d: columnar %d points, legacy %d", tr.ID, got.Trip.N, len(want.Trip.Points))
	}
	mat := got.Trip.Materialize(true)
	if mat.ID != want.Trip.ID || mat.CarID != want.Trip.CarID {
		t.Fatalf("trip %d identity diverges", tr.ID)
	}
	for i := range want.Trip.Points {
		wp, gp := &want.Trip.Points[i], &mat.Points[i]
		if gp.PointID != wp.PointID || gp.TripID != wp.TripID ||
			!gp.Time.Equal(wp.Time) ||
			math.Float64bits(gp.Pos.X) != math.Float64bits(wp.Pos.X) ||
			math.Float64bits(gp.Pos.Y) != math.Float64bits(wp.Pos.Y) ||
			math.Float64bits(gp.SpeedKmh) != math.Float64bits(wp.SpeedKmh) ||
			math.Float64bits(gp.FuelMl) != math.Float64bits(wp.FuelMl) ||
			math.Float64bits(gp.DistM) != math.Float64bits(wp.DistM) {
			t.Fatalf("trip %d point %d diverges:\ncolumnar %+v\nlegacy   %+v", tr.ID, i, *gp, *wp)
		}
	}
}

// TestRepairColumnsMatchesRepair is the kernel-level differential: over
// thousands of randomly corrupted trips and several configs, the
// columnar repair must agree with the row-oriented one bit for bit —
// points, order choice, and every stat.
func TestRepairColumnsMatchesRepair(t *testing.T) {
	cfgs := []Config{
		{},
		{MaxSpeedKmh: 1e9},
		{Area: geo.R(-100, -100, 4000, 100)},
		{MaxSpeedKmh: 40, Area: geo.R(-100, -100, 4000, 100)},
	}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 2000; i++ {
		tr := randomCorruptTrip(rng, int64(i+1))
		compareRepair(t, tr, cfgs[i%len(cfgs)])
	}
}

// TestRepairColumnsSharedArena: cleaning may append to the same arena
// that holds the raw view (the pipeline does), and multiple trips may
// share one arena and scratch.
func TestRepairColumnsSharedArena(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	a := trace.NewArena(0)
	var s Scratch
	var views []trace.ColTrip
	trips := make([]*trace.Trip, 8)
	for i := range trips {
		trips[i] = randomCorruptTrip(rng, int64(i+1))
		v, err := a.AppendTrip(trips[i])
		if err != nil {
			t.Fatal(err)
		}
		views = append(views, v)
	}
	for i, v := range views {
		got := RepairColumns(v, Config{}, a, &s)
		want := Repair(trips[i], Config{})
		if (want.Trip == nil) != (got.Trip.N == 0) {
			t.Fatalf("trip %d survival diverges", i+1)
		}
		if want.Trip == nil {
			continue
		}
		mat := got.Trip.Materialize(true)
		for k := range want.Trip.Points {
			if mat.Points[k] != want.Trip.Points[k] {
				t.Fatalf("trip %d point %d diverges under shared arena", i+1, k)
			}
		}
	}
}

// TestRepairColumnsIdempotent mirrors Repair's idempotence contract.
func TestRepairColumnsIdempotent(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := trace.NewArena(0)
	var s Scratch
	for i := 0; i < 200; i++ {
		a.Reset()
		tr := randomCorruptTrip(rng, int64(i+1))
		v, err := a.AppendTrip(tr)
		if err != nil {
			t.Fatal(err)
		}
		r1 := RepairColumns(v, Config{}, a, &s)
		if r1.Trip.N == 0 {
			continue
		}
		r2 := RepairColumns(r1.Trip, Config{}, a, &s)
		if r2.Trip.N != r1.Trip.N || r2.Dropped != 0 || r2.Reordered {
			t.Fatalf("not idempotent: first %+v, second %+v", r1, r2)
		}
		for k := 0; k < r1.Trip.N; k++ {
			if r1.Trip.Point(k) != r2.Trip.Point(k) {
				t.Fatalf("re-repair moved point %d", k)
			}
		}
	}
}
