package experiments

import (
	"bytes"
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/grid"
	"repro/internal/segment"
	"repro/internal/stats"
)

// Table1 prints junction pairs with their contributing traffic-element
// arrays (paper Table 1, EPSG:4326 presentation).
func Table1(env *Env) *Report {
	var w bytes.Buffer
	fmt.Fprintf(&w, "%-28s %-28s %s\n", "Junction1 (Point,4326)", "Junction2 (Point,4326)", "elements")
	pairs := env.P.Graph.JunctionPairs()
	proj := env.P.City.DB.Proj
	// Show the multi-element chains first: those are the interesting
	// Table 1 rows (merged edges), then a few single-element rows.
	shown := 0
	for _, multi := range []bool{true, false} {
		for _, pr := range pairs {
			if (len(pr.Elements) > 1) != multi {
				continue
			}
			fmt.Fprintf(&w, "%-28s %-28s %v\n",
				proj.ToPoint(pr.Junction1).String(),
				proj.ToPoint(pr.Junction2).String(),
				pr.Elements)
			shown++
			if shown >= 10 {
				break
			}
		}
		if shown >= 10 {
			break
		}
	}
	fmt.Fprintf(&w, "... (%d junction pairs total, %d junctions, %d edges)\n",
		len(pairs), len(env.P.Graph.Junctions()), len(env.P.Graph.Edges))
	return report("table1", "Table 1: junction pairs with merged traffic-element arrays", &w)
}

// Table2 prints the segmentation rules actually configured (paper
// Table 2).
func Table2() *Report {
	r := segment.DefaultRules()
	var w bytes.Buffer
	fmt.Fprintf(&w, "1  no movement (< %.0f m) for >= %s is a stop\n", r.MoveEpsilonM, r.StillGap)
	fmt.Fprintf(&w, "2  < %.0f km moved across a gap of more than %s is a stop\n", r.SlowDistM/1000, r.SlowGap)
	fmt.Fprintf(&w, "3  implied speed below %.3f m/s is a stop\n", r.CrawlSpeedMS)
	fmt.Fprintf(&w, "4  < %.0f km in more than %s (above crawl speed) is a stop\n", r.SlowDistM/1000, r.LongGap)
	fmt.Fprintf(&w, "5  segments over %.0f km re-split with rule 1 at %s\n", r.ResplitLengthM/1000, r.ResplitGap)
	fmt.Fprintf(&w, "post-filter: segments with < %d points or over %.0f km removed\n", r.MinPoints, r.MaxLengthM/1000)
	return report("table2", "Table 2: segmentation rules", &w)
}

// Table3 prints the per-car selection funnel (paper Table 3).
func Table3(env *Env) *Report {
	var w bytes.Buffer
	fmt.Fprintf(&w, "%-4s %12s %10s %12s %12s %14s\n",
		"Car", "TripSegs", "Filtered", "Transitions", "WithinCentre", "PostFiltered")
	var tot [5]int
	for _, cr := range env.Res.Cars {
		f := cr.Funnel
		fmt.Fprintf(&w, "%-4d %12d %10d %12d %12d %14d\n",
			f.Car, f.TripSegments, f.Filtered, f.Transitions, f.WithinCentre, f.PostFiltered)
		tot[0] += f.TripSegments
		tot[1] += f.Filtered
		tot[2] += f.Transitions
		tot[3] += f.WithinCentre
		tot[4] += f.PostFiltered
	}
	fmt.Fprintf(&w, "%-4s %12d %10d %12d %12d %14d\n", "all",
		tot[0], tot[1], tot[2], tot[3], tot[4])
	return report("table3", "Table 3: map matching the trip segments (selection funnel)", &w)
}

// table4Metric extracts one Table 4 metric from a transition record.
type table4Metric struct {
	label  string
	digits int
	value  func(*core.TransitionRecord) float64
}

var table4Metrics = []table4Metric{
	{"time(h)", 3, func(r *core.TransitionRecord) float64 { return r.RouteTimeH }},
	{"dist(km)", 3, func(r *core.TransitionRecord) float64 { return r.RouteDistKm }},
	{"low-spd(%)", 1, func(r *core.TransitionRecord) float64 { return r.LowSpeedPct }},
	{"norm-spd(%)", 1, func(r *core.TransitionRecord) float64 { return r.NormalSpeedPct }},
	{"lights", 0, func(r *core.TransitionRecord) float64 { return float64(r.Attrs.TrafficLights) }},
	{"junctions", 0, func(r *core.TransitionRecord) float64 { return float64(r.Attrs.Junctions) }},
	{"ped-cross", 0, func(r *core.TransitionRecord) float64 { return float64(r.Attrs.PedestrianCrossings) }},
	{"fuel(ml)", 1, func(r *core.TransitionRecord) float64 { return r.FuelMl }},
}

// Table4Directions are the studied OD directions in paper order.
var Table4Directions = []string{"T-S", "S-T", "T-L", "L-T"}

// Table4 prints the six-number summaries of the selected features per
// direction (paper Table 4).
func Table4(env *Env) *Report {
	byDir := map[string][]*core.TransitionRecord{}
	for _, rec := range env.Res.Transitions() {
		byDir[rec.Direction()] = append(byDir[rec.Direction()], rec)
	}
	var w bytes.Buffer
	fmt.Fprintf(&w, "%-12s %-4s %8s %8s %8s %8s %8s %8s\n",
		"metric", "dir", "min", "q1", "median", "mean", "q3", "max")
	for _, m := range table4Metrics {
		for _, dir := range Table4Directions {
			recs := byDir[dir]
			vals := make([]float64, len(recs))
			for i, r := range recs {
				vals[i] = m.value(r)
			}
			fmtSummaryRow(&w, m.label, dir, stats.Summarize(vals), m.digits)
		}
	}
	for _, dir := range Table4Directions {
		fmt.Fprintf(&w, "n(%s)=%d ", dir, len(byDir[dir]))
	}
	fmt.Fprintln(&w)
	return report("table4", "Table 4: summary statistics of the selected features", &w)
}

// Table5 prints the effect of traffic lights and bus stops on cell
// average speed (paper Table 5).
func Table5(env *Env) *Report {
	cells := env.Agg.Cells()
	conds := []struct {
		name string
		pred func(grid.CellFeatures) bool
	}{
		{"lights=0", func(f grid.CellFeatures) bool { return f.TrafficLights == 0 }},
		{"lights&stops=0", func(f grid.CellFeatures) bool { return f.TrafficLights == 0 && f.BusStops == 0 }},
		{"lights&stops>0", func(f grid.CellFeatures) bool { return f.TrafficLights > 0 && f.BusStops > 0 }},
		{"lights>0", func(f grid.CellFeatures) bool { return f.TrafficLights > 0 }},
	}
	var w bytes.Buffer
	fmt.Fprintf(&w, "%-16s %8s %8s %8s %10s %6s\n", "condition", "min", "max", "mean", "var", "cells")
	for _, c := range conds {
		s := grid.ConditionalStats(cells, c.pred)
		v := grid.VarianceOfMeans(cells, c.pred)
		fmt.Fprintf(&w, "%-16s %8.2f %8.2f %8.2f %10.2f %6d\n",
			c.name, s.Min, s.Max, s.Mean, v, s.N)
	}
	// Significance of the lights effect on cell means (Welch t-test).
	var withL, withoutL []float64
	for _, c := range cells {
		if c.Features.TrafficLights > 0 {
			withL = append(withL, c.Speed.Mean())
		} else {
			withoutL = append(withoutL, c.Speed.Mean())
		}
	}
	if tt, err := stats.WelchT(withL, withoutL); err == nil {
		fmt.Fprintf(&w, "lights effect on cell mean speed: t=%.2f (df=%.0f), p=%.4f\n",
			tt.T, tt.DF, tt.P)
	}
	return report("table5", "Table 5: effect of traffic lights and bus stops on cell average speed", &w)
}

// SeasonalDeltas prints the seasonal mean point-speed deltas vs the
// annual mean (paper §VI: winter -0.07, spring +0.46, summer +0.70,
// autumn +1.38 km/h).
func SeasonalDeltas(env *Env) *Report {
	var all []float64
	bySeason := map[string][]float64{}
	for _, rec := range env.Res.Transitions() {
		season := rec.Season.String()
		for _, sp := range core.TransitionSpeedPoints(rec) {
			all = append(all, sp.SpeedKmh)
			bySeason[season] = append(bySeason[season], sp.SpeedKmh)
		}
	}
	annual := stats.Mean(all)
	var w bytes.Buffer
	fmt.Fprintf(&w, "annual mean point speed: %.2f km/h over %d points\n", annual, len(all))
	for _, season := range []string{"winter", "spring", "summer", "autumn"} {
		vals := bySeason[season]
		if len(vals) == 0 {
			fmt.Fprintf(&w, "%-7s (no data)\n", season)
			continue
		}
		fmt.Fprintf(&w, "%-7s mean %6.2f km/h, delta %+5.2f km/h (n=%d)\n",
			season, stats.Mean(vals), stats.Mean(vals)-annual, len(vals))
	}
	return report("seasonal", "Seasonal mean-speed deltas (paper section VI)", &w)
}

// studyAreaTotals prints the paper's {67,48,293,271} feature totals.
func studyAreaTotals(env *Env) string {
	fc := env.P.City.DB.CountFeatures(env.P.City.StudyArea)
	junctions := len(env.P.Graph.JunctionsIn(env.P.City.StudyArea))
	return fmt.Sprintf("study-area features {lights, bus stops, pedestrian crossings, crossings} = {%d, %d, %d, %d} (paper: {67, 48, 293, 271})",
		fc.TrafficLights, fc.BusStops, fc.PedestrianCrossings, junctions)
}

// FeatureAssociations fits the paper's model 2 — point speed on cell
// map features with a per-cell random intercept — and prints the fixed
// effects (the "associations between map features and driving speed"
// of the contribution statement).
func FeatureAssociations(env *Env) *Report {
	fit, err := env.P.FeatureModel(env.Res.Transitions())
	var w bytes.Buffer
	if err != nil {
		fmt.Fprintf(&w, "model could not be fitted: %v\n", err)
		return report("features", "Model 2: map-feature effects on cell speed", &w)
	}
	fmt.Fprintf(&w, "%-22s %10s %9s %7s\n", "term", "estimate", "stderr", "t")
	fmt.Fprintf(&w, "%-22s %10.3f %9.3f %7.2f\n", "(intercept)",
		fit.Coef[0], fit.StdErr[0], fit.Coef[0]/fit.StdErr[0])
	for i, name := range core.FeatureNames {
		c, se := fit.Coef[i+1], fit.StdErr[i+1]
		fmt.Fprintf(&w, "%-22s %10.3f %9.3f %7.2f\n", name, c, se, c/se)
	}
	fmt.Fprintf(&w, "sigma_a=%.2f km/h, sigma=%.2f km/h over %d observations\n",
		math.Sqrt(fit.SigmaA2), math.Sqrt(fit.Sigma2), fit.NObs)
	return report("features", "Model 2: map-feature effects on cell speed", &w)
}

// ODMatrix tallies every gate-to-gate transition (all six ordered
// pairs), the wider picture from which the paper selects its four
// studied directions.
func ODMatrix(env *Env) *Report {
	m := env.P.Selector.NewMatrix()
	for _, seg := range env.Res.Segments() {
		m.Add(env.P.Selector.Classify(seg))
	}
	var w bytes.Buffer
	fmt.Fprint(&w, m.String())
	fmt.Fprintf(&w, "total transitions: %d (the paper studies T-L, L-T, T-S, S-T)\n", m.Total())
	return report("odmatrix", "Origin-destination transition matrix over all gates", &w)
}
