package experiments

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"time"

	"math"
	"repro/internal/clean"
	"repro/internal/coach"
	"repro/internal/core"
	"repro/internal/geo"

	"repro/internal/mapmatch"
	"repro/internal/odselect"
	"repro/internal/render"
	"repro/internal/roadnet"
	"repro/internal/routes"
	"repro/internal/stats"
	"repro/internal/trace"
)

// Ablations runs the design-choice studies DESIGN.md calls out and
// returns them as reports: matcher comparison, thick-geometry width
// sweep, and ordering-repair accuracy.
func Ablations(env *Env) []*Report {
	return []*Report{
		AblationMatchers(env),
		AblationThickness(env),
		AblationOrderingRepair(env),
	}
}

// syntheticDrives samples ground-truth drives with noisy device points
// over the environment's network.
func syntheticDrives(env *Env, n int, seed int64) ([][]roadnet.EdgeID, [][]trace.RoutePoint) {
	rng := rand.New(rand.NewSource(seed))
	g := env.P.Graph
	rt := env.P.Router
	t0 := time.Date(2013, 2, 1, 9, 0, 0, 0, time.UTC)
	var truths [][]roadnet.EdgeID
	var traces [][]trace.RoutePoint
	for len(truths) < n {
		from := roadnet.NodeID(rng.Intn(len(g.Nodes)))
		to := roadnet.NodeID(rng.Intn(len(g.Nodes)))
		path, err := rt.ShortestPath(from, to, roadnet.TravelTimeWeight)
		if err != nil || path.Length < 1200 || path.Length > 3500 {
			continue
		}
		geom := path.Geometry()
		var pts []trace.RoutePoint
		i := 0
		for d := 0.0; d <= geom.Length(); d += 60 + rng.Float64()*60 {
			p := geom.PointAt(d)
			pts = append(pts, trace.RoutePoint{
				PointID: i + 1, TripID: int64(len(truths) + 1),
				Pos:  p.Add(randXY(rng, 4)),
				Time: t0.Add(time.Duration(i) * 10 * time.Second),
			})
			i++
		}
		if len(pts) < 5 {
			continue
		}
		truths = append(truths, path.Edges())
		traces = append(traces, pts)
	}
	return truths, traces
}

func randXY(rng *rand.Rand, sigma float64) geo.XY {
	return geo.V(rng.NormFloat64()*sigma, rng.NormFloat64()*sigma)
}

// AblationMatchers compares the incremental matcher (with and without
// the map-direction enhancement) against the HMM baseline on synthetic
// drives with known ground truth.
func AblationMatchers(env *Env) *Report {
	truths, traces := syntheticDrives(env, 25, 7)

	plainCfg := mapmatch.DefaultConfig()
	plainCfg.UseDirectionHints = false
	lookCfg := mapmatch.DefaultConfig()
	lookCfg.LookaheadDepth = 2
	matchers := []struct {
		name  string
		match func([]trace.RoutePoint) (*mapmatch.Result, error)
	}{
		{"incremental+hints", mapmatch.NewIncrementalRouter(env.P.Router, mapmatch.DefaultConfig()).Match},
		{"incremental-plain", mapmatch.NewIncrementalRouter(env.P.Router, plainCfg).Match},
		{"incremental-look2", mapmatch.NewIncrementalRouter(env.P.Router, lookCfg).Match},
		{"hmm-viterbi", mapmatch.NewHMMRouter(env.P.Router, mapmatch.HMMConfig{}).Match},
	}

	var w bytes.Buffer
	fmt.Fprintf(&w, "%d synthetic drives, 4 m GPS noise, 60-120 m point spacing\n", len(truths))
	fmt.Fprintf(&w, "%-20s %9s %9s %9s %10s %12s %10s\n",
		"matcher", "precision", "recall", "F1", "hausdorff", "length-err", "time/trace")
	for _, m := range matchers {
		var evs []mapmatch.Evaluation
		start := time.Now()
		for i, pts := range traces {
			res, err := m.match(pts)
			if err != nil {
				continue
			}
			evs = append(evs, mapmatch.Evaluate(env.P.Graph, res, truths[i]))
		}
		elapsed := time.Since(start) / time.Duration(len(traces))
		mean := mapmatch.MeanEvaluation(evs)
		fmt.Fprintf(&w, "%-20s %9.3f %9.3f %9.3f %9.1fm %11.1fm %10s\n",
			m.name, mean.Precision, mean.Recall, mean.F1,
			mean.HausdorffM, mean.LengthErrorM, elapsed.Round(time.Microsecond))
	}
	return report("ablation-matchers", "Ablation: map-matching algorithms", &w)
}

// AblationThickness sweeps the thick-geometry width of the OD gates and
// reports how the Table 3 funnel responds.
func AblationThickness(env *Env) *Report {
	var w bytes.Buffer
	fmt.Fprintf(&w, "%-8s %10s %12s %14s\n", "width", "filtered", "transitions", "post-filtered")
	segs := env.Res.Segments()
	for _, width := range []float64{40, 80, 150, 250, 400} {
		sel, err := odselect.NewSelector([]odselect.Gate{
			odselect.NewGate("T", env.P.City.GateT, width),
			odselect.NewGate("S", env.P.City.GateS, width),
			odselect.NewGate("L", env.P.City.GateL, width),
		}, odselect.Config{CentralArea: env.P.City.CentralArea})
		if err != nil {
			fmt.Fprintf(&w, "%-8.0f selector error: %v\n", width, err)
			continue
		}
		f, _ := sel.Run(0, segs)
		fmt.Fprintf(&w, "%-8.0f %10d %12d %14d\n", width, f.Filtered, f.Transitions, f.PostFiltered)
	}
	fmt.Fprintln(&w, "too thin misses deviating routes; too thick admits passers-by — the paper's rationale for thick geometry")
	return report("ablation-thickness", "Ablation: thick-geometry width sweep", &w)
}

// AblationOrderingRepair measures how often the min-total-distance rule
// recovers the true order versus a timestamp-only sort, under both
// corruption regimes (id glitches and timestamp jitter). The paper's
// rule is the only one correct in both.
func AblationOrderingRepair(env *Env) *Report {
	raw := env.P.Gen.CarTrips(1)
	var w bytes.Buffer
	for _, mode := range []string{"id-glitch", "timestamp-jitter"} {
		rng := rand.New(rand.NewSource(13))
		total, minDistOK, tsOnlyOK := 0, 0, 0
		for _, t := range raw {
			if len(t.Points) < 8 {
				continue
			}
			// Ground truth: the trip repaired once (the generator's raw
			// output already carries corruption), giving the true order
			// with ids renumbered 1..n.
			base := clean.Repair(t, clean.Config{MaxSpeedKmh: 1e9}).Trip
			if base == nil || len(base.Points) < 8 {
				continue
			}
			truth := base.Points
			wantLen := trace.PathLength(truth)

			cp := base.Clone()
			i := 1 + rng.Intn(len(cp.Points)-3)
			if mode == "id-glitch" {
				cp.Points[i].PointID, cp.Points[i+1].PointID = cp.Points[i+1].PointID, cp.Points[i].PointID
			} else {
				cp.Points[i].Time, cp.Points[i+1].Time = cp.Points[i+1].Time, cp.Points[i].Time
			}
			rng.Shuffle(len(cp.Points), func(a, b int) {
				cp.Points[a], cp.Points[b] = cp.Points[b], cp.Points[a]
			})

			// "Recovered" allows a 5 m slack: swaps inside a stand
			// still reorder near-identical positions without changing
			// the trajectory meaningfully.
			const slackM = 5
			total++
			r := clean.Repair(cp, clean.Config{MaxSpeedKmh: 1e9})
			if r.Trip != nil && within(trace.PathLength(r.Trip.Points), wantLen, slackM) {
				minDistOK++
			}
			byTime := append([]trace.RoutePoint(nil), cp.Points...)
			sort.SliceStable(byTime, func(a, b int) bool { return byTime[a].Time.Before(byTime[b].Time) })
			if within(trace.PathLength(byTime), wantLen, slackM) {
				tsOnlyOK++
			}
		}
		fmt.Fprintf(&w, "%s corruption over %d trips:\n", mode, total)
		fmt.Fprintf(&w, "  min-distance rule recovered the true path: %d/%d\n", minDistOK, total)
		fmt.Fprintf(&w, "  timestamp-only sort recovered it:          %d/%d\n", tsOnlyOK, total)
	}
	fmt.Fprintln(&w, "the min-total-distance rule is the only one reliable in both regimes")
	return report("ablation-ordering", "Ablation: ordering repair rules", &w)
}

func within(a, b, tol float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= tol
}

// Extensions runs the conclusions' extension studies: the eco-routing
// route-variant comparison and the Driving Coach fleet summary.
func Extensions(env *Env) []*Report {
	return []*Report{EcoRoutes(env), HotspotRecovery(env)}
}

// EcoRoutes reports the route variants per studied direction with their
// fuel/time outcomes (Minett et al. [24] on free route choices) and the
// Driving Coach fleet summary.
func EcoRoutes(env *Env) *Report {
	recs := env.Res.Transitions()
	var w bytes.Buffer
	c := coach.NewWithRouter(env.P.Router)
	var scores []float64
	for _, rec := range recs {
		scores = append(scores, c.Analyze(rec).EcoScore)
	}
	fmt.Fprintf(&w, "driving coach fleet summary over %d trips: eco score %s\n\n",
		len(recs), stats.Summarize(scores))

	options, err := CompareRoutesCached(recs)
	if err != nil {
		fmt.Fprintf(&w, "route comparison failed: %v\n", err)
		return report("ecoroutes", "Extension: eco-routing route variants", &w)
	}
	fmt.Fprintf(&w, "%-5s %-8s %6s %10s %10s %8s %6s\n",
		"dir", "variant", "trips", "fuel(ml)", "time(min)", "low%", "best")
	for _, o := range options {
		if o.Trips < 2 && !o.EcoBest {
			continue
		}
		mark := ""
		if o.EcoBest {
			mark = "*"
		}
		fmt.Fprintf(&w, "%-5s %-8d %6d %10.0f %10.1f %8.1f %6s\n",
			o.Direction, o.Variant, o.Trips, o.MeanFuelMl, o.MeanTimeMin, o.MeanLowPct, mark)
	}
	return report("ecoroutes", "Extension: eco-routing route variants", &w)
}

// CompareRoutesCached wraps coach.CompareRoutes with the default
// clustering configuration.
func CompareRoutesCached(recs []*core.TransitionRecord) ([]coach.RouteOption, error) {
	return coach.CompareRoutes(recs, routes.Config{})
}

// HotspotRecovery runs the information-discovery validation: detect
// crowded-area candidates from the feature-adjusted mixed model and
// compare them against the city's planted hotspots.
func HotspotRecovery(env *Env) *Report {
	var w bytes.Buffer
	det, err := env.P.DetectHotspots(env.Res.Transitions(), 0)
	if err != nil {
		fmt.Fprintf(&w, "detection failed: %v\n", err)
		return report("hotspots", "Extension: crowded-area recovery", &w)
	}
	rec := core.EvaluateHotspotRecovery(det, env.P.City.Hotspots, 150)
	fmt.Fprintf(&w, "residual-intercept threshold: %.2f km/h\n", det.ThresholdKmh)
	fmt.Fprintf(&w, "flagged cells: %d, precision %.2f, planted hotspots found %d/%d\n",
		rec.Detected, rec.Precision, rec.HotspotsFound, rec.HotspotsTotal)
	fmt.Fprintf(&w, "%-10s %6s %9s %9s\n", "cell", "n", "residual", "raw mean")
	for _, c := range det.Cells {
		fmt.Fprintf(&w, "%-10s %6d %9.2f %9.2f\n", c.ID, c.N, c.BLUP, c.RawMean)
	}

	// Map: truth circles + flagged cells.
	cv := render.NewCanvas(env.P.City.StudyArea, 1000)
	for i := range env.P.Graph.Edges {
		cv.Polyline(env.P.Graph.Edges[i].Geom, "#e0e0e0", 1)
	}
	for _, c := range det.Cells {
		rect := env.Agg.Grid.CellRect(c.ID)
		cv.Rect(rect, "#d04010", 0.6)
	}
	for _, h := range env.P.City.Hotspots {
		circle := make(geo.Polyline, 0, 33)
		for k := 0; k <= 32; k++ {
			a := 2 * math.Pi * float64(k) / 32
			circle = append(circle, geo.V(
				h.Center.X+h.Radius*math.Cos(a),
				h.Center.Y+h.Radius*math.Sin(a)))
		}
		cv.Polyline(circle, "#2050c0", 2.5)
	}
	var buf bytes.Buffer
	cv.WriteTo(&buf)
	return report("hotspots", "Extension: crowded-area recovery from the data", &w,
		Artifact{Name: "hotspots_recovery.svg", Data: buf.Bytes()})
}
