// Package experiments regenerates every table and figure of the
// paper's evaluation (Tables 1-5, Figures 3-10, and the seasonal
// mean-speed deltas quoted in §VI). Each experiment returns a Report
// holding the printable rows/series and any SVG artifacts.
package experiments

import (
	"bytes"
	"context"
	"fmt"
	"log/slog"

	"repro/internal/core"
	"repro/internal/grid"
	"repro/internal/obs"
	"repro/internal/stats"
	"repro/internal/tracegen"
)

// EnvConfig sizes the shared experiment environment.
type EnvConfig struct {
	Seed        int64
	Cars        int
	TripsPerCar int
	// GateRunFraction biases the simulated demand toward gate-to-gate
	// runs; the paper's observed share of transitions is ~4 % of all
	// segments, which the default 0.10 run share roughly yields after
	// filtering.
	GateRunFraction float64
	// Metrics, when non-nil, instruments the pipeline run (stage spans,
	// kept/dropped counters, router cache stats).
	Metrics *obs.Registry
	// Workers bounds the fleet runner's worker pool (0 = GOMAXPROCS);
	// MaxFailures is its error budget (0 = unlimited, negative =
	// abort on first failure). Experiments need the complete fleet, so
	// any car failure fails NewEnv — but with the budget the caller
	// controls how fast a doomed paper-scale regeneration gives up.
	Workers     int
	MaxFailures int
	// Lineage, when non-nil, receives the run's drop-reason ledger
	// (conservation-checked data lineage); Log receives structured
	// per-car and fleet log lines.
	Lineage *obs.Lineage
	Log     *slog.Logger
}

// SmallScale is a quick configuration for tests and benchmarks.
func SmallScale() EnvConfig {
	return EnvConfig{Seed: 42, Cars: 3, TripsPerCar: 10, GateRunFraction: 0.35}
}

// PaperScale approximates the paper's data volume: 7 taxis over one
// year, a few thousand trip segments per car.
func PaperScale() EnvConfig {
	return EnvConfig{Seed: 42, Cars: 7, TripsPerCar: 320, GateRunFraction: 0.12}
}

// Env is the shared state all experiments read: one pipeline run plus
// the grid analysis.
type Env struct {
	Cfg EnvConfig
	P   *core.Pipeline
	Res *core.Result
	Agg *grid.Aggregator
	LMM *stats.LMMResult
}

// NewEnv builds the city, simulates the fleet, and runs the full
// pipeline once.
func NewEnv(cfg EnvConfig) (*Env, error) {
	p, err := core.NewPipeline(core.Config{
		CitySeed: cfg.Seed,
		Fleet: tracegen.Config{
			Seed:            cfg.Seed,
			Cars:            cfg.Cars,
			TripsPerCar:     cfg.TripsPerCar,
			GateRunFraction: cfg.GateRunFraction,
		},
		Workers:     cfg.Workers,
		MaxFailures: cfg.MaxFailures,
		Metrics:     cfg.Metrics,
		Lineage:     cfg.Lineage,
		Log:         cfg.Log,
	})
	if err != nil {
		return nil, err
	}
	res, err := p.RunContext(context.Background())
	if err != nil {
		// The tables and figures quote fleet-wide numbers; a partial
		// fleet would silently skew them, so any car failure fails the
		// environment build.
		return nil, fmt.Errorf("experiments: fleet run: %w", err)
	}
	env := &Env{Cfg: cfg, P: p, Res: res}
	agg, lmm, err := p.GridAnalysis(res.Transitions())
	if err != nil {
		return nil, fmt.Errorf("experiments: grid analysis: %w", err)
	}
	env.Agg = agg
	env.LMM = lmm
	return env, nil
}

// Artifact is one binary output (an SVG figure).
type Artifact struct {
	Name string
	Data []byte
}

// Report is one regenerated table or figure.
type Report struct {
	ID        string // "table3", "fig9", ...
	Title     string
	Text      string
	Artifacts []Artifact
}

// report builds a Report from a text buffer.
func report(id, title string, text *bytes.Buffer, artifacts ...Artifact) *Report {
	return &Report{ID: id, Title: title, Text: text.String(), Artifacts: artifacts}
}

// All runs every experiment in paper order.
func All(env *Env) []*Report {
	return []*Report{
		Table1(env),
		Table2(),
		Table3(env),
		Table4(env),
		Table5(env),
		Figure2(env),
		Figure3(env, 1),
		Figure4(env, 1),
		Figure5(env, 1),
		Figure6(env),
		Figure7(env),
		Figure8(env),
		Figure9(env),
		Figure10(env),
		SeasonalDeltas(env),
		FeatureAssociations(env),
		ODMatrix(env),
	}
}

// fmtSummaryRow prints one Table 4 metric row.
func fmtSummaryRow(w *bytes.Buffer, label, direction string, s stats.Summary, digits int) {
	f := fmt.Sprintf("%%%d.%df", 8, digits)
	fmt.Fprintf(w, "%-12s %-4s "+f+" "+f+" "+f+" "+f+" "+f+" "+f+"\n",
		label, direction, s.Min, s.Q1, s.Median, s.Mean, s.Q3, s.Max)
}
