package experiments

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/grid"
	"repro/internal/stats"
	"repro/internal/weather"
)

// sharedEnv is built once: the environment is deterministic, and every
// experiment reads it without mutation.
var (
	envOnce sync.Once
	envVal  *Env
	envErr  error
)

func testEnv(t *testing.T) *Env {
	t.Helper()
	envOnce.Do(func() {
		envVal, envErr = NewEnv(EnvConfig{
			Seed: 42, Cars: 4, TripsPerCar: 60, GateRunFraction: 0.25,
		})
	})
	if envErr != nil {
		t.Fatalf("NewEnv: %v", envErr)
	}
	return envVal
}

func checkReport(t *testing.T, r *Report, wantID string) {
	t.Helper()
	if r.ID != wantID {
		t.Fatalf("report id = %q, want %q", r.ID, wantID)
	}
	if r.Title == "" || r.Text == "" {
		t.Fatalf("report %s missing title or text", r.ID)
	}
	for _, a := range r.Artifacts {
		if a.Name == "" || len(a.Data) == 0 {
			t.Fatalf("report %s has empty artifact %q", r.ID, a.Name)
		}
		if !strings.HasPrefix(string(a.Data), "<svg") {
			t.Fatalf("artifact %s is not SVG", a.Name)
		}
		if !strings.HasSuffix(strings.TrimSpace(string(a.Data)), "</svg>") {
			t.Fatalf("artifact %s is truncated", a.Name)
		}
	}
}

func TestTable1(t *testing.T) {
	r := Table1(testEnv(t))
	checkReport(t, r, "table1")
	if !strings.Contains(r.Text, "POINT(") {
		t.Fatal("Table 1 must print EPSG:4326 junction points")
	}
	// Merged chains must appear: an elements array with >= 2 ids.
	if !strings.Contains(r.Text, " ") || !strings.Contains(r.Text, "[") {
		t.Fatal("Table 1 must print element arrays")
	}
}

func TestTable2(t *testing.T) {
	r := Table2()
	checkReport(t, r, "table2")
	for _, frag := range []string{"3m0s", "7m0s", "0.002", "15m0s", "1m30s", "30 km"} {
		if !strings.Contains(r.Text, frag) {
			t.Fatalf("Table 2 missing %q:\n%s", frag, r.Text)
		}
	}
}

func TestTable3FunnelShape(t *testing.T) {
	env := testEnv(t)
	r := Table3(env)
	checkReport(t, r, "table3")
	for _, cr := range env.Res.Cars {
		f := cr.Funnel
		if !(f.TripSegments > f.Filtered && f.Filtered > f.Transitions &&
			f.Transitions >= f.WithinCentre && f.WithinCentre >= f.PostFiltered) {
			t.Fatalf("car %d funnel not strictly narrowing: %+v", f.Car, f)
		}
		// Paper shape: a minority of segments touch gates (~25 %), a
		// few percent become transitions.
		ratio := float64(f.Filtered) / float64(f.TripSegments)
		if ratio < 0.05 || ratio > 0.8 {
			t.Fatalf("car %d filtered ratio %f out of plausible band", f.Car, ratio)
		}
		if f.PostFiltered == 0 {
			t.Fatalf("car %d has no accepted transitions", f.Car)
		}
	}
}

// directionMeans computes mean low-speed and normal-speed shares per
// direction from the raw records.
func directionMeans(env *Env) (low, normal map[string]float64) {
	sums := map[string][2]float64{}
	counts := map[string]int{}
	for _, rec := range env.Res.Transitions() {
		d := rec.Direction()
		s := sums[d]
		s[0] += rec.LowSpeedPct
		s[1] += rec.NormalSpeedPct
		sums[d] = s
		counts[d]++
	}
	low = map[string]float64{}
	normal = map[string]float64{}
	for d, s := range sums {
		low[d] = s[0] / float64(counts[d])
		normal[d] = s[1] / float64(counts[d])
	}
	return low, normal
}

func TestTable4PaperShape(t *testing.T) {
	env := testEnv(t)
	r := Table4(env)
	checkReport(t, r, "table4")

	low, normal := directionMeans(env)
	for _, d := range Table4Directions {
		if low[d] == 0 {
			t.Fatalf("direction %s has no data", d)
		}
	}
	// Paper: S-T and T-S contain a greater proportion of low speed
	// than T-L and L-T; proportion of normal speed is contrariwise.
	busy := (low["T-S"] + low["S-T"]) / 2
	calm := (low["T-L"] + low["L-T"]) / 2
	if busy <= calm {
		t.Fatalf("low-speed shape inverted: T-S/S-T %.1f vs T-L/L-T %.1f", busy, calm)
	}
	busyN := (normal["T-S"] + normal["S-T"]) / 2
	calmN := (normal["T-L"] + normal["L-T"]) / 2
	if busyN >= calmN {
		t.Fatalf("normal-speed shape inverted: T-S/S-T %.1f vs T-L/L-T %.1f", busyN, calmN)
	}
}

func TestTable4LightsSimilarAcrossDirections(t *testing.T) {
	// Paper section VI: "the mean value of traffic lights and junctions
	// is almost the same for each Origin-Destination pair", so the
	// count of lights does not itself explain the low-speed gap.
	env := testEnv(t)
	means := map[string]float64{}
	counts := map[string]int{}
	for _, rec := range env.Res.Transitions() {
		means[rec.Direction()] += float64(rec.Attrs.TrafficLights)
		counts[rec.Direction()]++
	}
	min, max := 1e18, 0.0
	for _, d := range Table4Directions {
		m := means[d] / float64(counts[d])
		if m < min {
			min = m
		}
		if m > max {
			max = m
		}
	}
	if max > 1.8*min {
		t.Fatalf("light means differ too much across directions: %.1f vs %.1f", min, max)
	}
}

func TestTable5PaperShape(t *testing.T) {
	env := testEnv(t)
	r := Table5(env)
	checkReport(t, r, "table5")

	cells := env.Agg.Cells()
	withLights := func(f grid.CellFeatures) bool { return f.TrafficLights > 0 }
	noLights := func(f grid.CellFeatures) bool { return f.TrafficLights == 0 }
	sWith := grid.ConditionalStats(cells, withLights)
	sWithout := grid.ConditionalStats(cells, noLights)
	if sWith.N == 0 || sWithout.N == 0 {
		t.Fatal("both cell groups must be populated")
	}
	// Paper: traffic lights decrease the average speed; cells without
	// lights have a much higher variance of values.
	if sWith.Mean >= sWithout.Mean {
		t.Fatalf("cells with lights must be slower: %.2f vs %.2f", sWith.Mean, sWithout.Mean)
	}
	vWith := grid.VarianceOfMeans(cells, withLights)
	vWithout := grid.VarianceOfMeans(cells, noLights)
	if vWith >= vWithout {
		t.Fatalf("no-light cells must vary more: %.2f vs %.2f", vWith, vWithout)
	}
	// And the fastest cells are light-free.
	if sWith.Max >= sWithout.Max {
		t.Fatalf("fastest cell should be light-free: %.2f vs %.2f", sWith.Max, sWithout.Max)
	}
}

func TestFigure3(t *testing.T) {
	r := Figure3(testEnv(t), 1)
	checkReport(t, r, "fig3")
	if !strings.Contains(r.Text, "taxi 1") {
		t.Fatal("Figure 3 must describe taxi 1")
	}
	if len(r.Artifacts) != 1 {
		t.Fatalf("Figure 3 artifacts = %d", len(r.Artifacts))
	}
}

func TestFigure4(t *testing.T) {
	r := Figure4(testEnv(t), 1)
	checkReport(t, r, "fig4")
	for _, d := range Table4Directions {
		if !strings.Contains(r.Text, d) {
			t.Fatalf("Figure 4 missing direction %s", d)
		}
	}
	if len(r.Artifacts) != 4 {
		t.Fatalf("Figure 4 should render one map per direction, got %d", len(r.Artifacts))
	}
}

func TestFigure5(t *testing.T) {
	r := Figure5(testEnv(t), 1)
	checkReport(t, r, "fig5")
	for _, s := range []string{"winter", "spring", "summer", "autumn"} {
		if !strings.Contains(r.Text, s) {
			t.Fatalf("Figure 5 missing season %s", s)
		}
	}
}

func TestFigure6(t *testing.T) {
	r := Figure6(testEnv(t))
	checkReport(t, r, "fig6")
	if !strings.Contains(r.Text, "paper: {67, 48, 293, 271}") {
		t.Fatal("Figure 6 must report study-area totals against the paper's")
	}
}

func TestFigure7QQ(t *testing.T) {
	env := testEnv(t)
	r := Figure7(env)
	checkReport(t, r, "fig7")
	qq := stats.NormalQQ(env.LMM.BLUPs())
	if len(qq) < 20 {
		t.Fatalf("QQ over %d cells only", len(qq))
	}
	// Gaussian regularisation justified: central half of the QQ plot
	// close to a straight line through the origin.
	mid := qq[len(qq)/2]
	if mid.Theoretical < -0.2 || mid.Theoretical > 0.2 {
		t.Fatalf("central theoretical quantile %f", mid.Theoretical)
	}
}

func TestFigure8Intervals(t *testing.T) {
	env := testEnv(t)
	r := Figure8(env)
	checkReport(t, r, "fig8")
	for _, e := range env.LMM.Groups {
		if e.SE < 0 {
			t.Fatalf("negative SE for %s", e.Name)
		}
		// Sparse cells carry wider intervals: check the extremes.
	}
	// Find a sparse and a dense cell and compare SEs.
	var sparse, dense *stats.GroupEffect
	for i := range env.LMM.Groups {
		e := &env.LMM.Groups[i]
		if sparse == nil || e.N < sparse.N {
			sparse = e
		}
		if dense == nil || e.N > dense.N {
			dense = e
		}
	}
	if sparse.N < dense.N && sparse.SE <= dense.SE {
		t.Fatalf("sparse cell (n=%d, se=%f) should have wider interval than dense (n=%d, se=%f)",
			sparse.N, sparse.SE, dense.N, dense.SE)
	}
}

func TestFigure9BLUPShape(t *testing.T) {
	env := testEnv(t)
	r := Figure9(env)
	checkReport(t, r, "fig9")
	blups := env.LMM.BLUPs()
	mn, mx := stats.MinMax(blups)
	// Paper: coefficients vary between ca. -15 and +20 km/h; require a
	// clearly non-degenerate spread in the same order of magnitude.
	if mx-mn < 5 {
		t.Fatalf("BLUP spread %.2f too small", mx-mn)
	}
	if mn > -2 || mx < 2 {
		t.Fatalf("BLUP range [%.2f, %.2f] lacks both slow and fast cells", mn, mx)
	}
}

func TestFigure10Shape(t *testing.T) {
	env := testEnv(t)
	r := Figure10(env)
	checkReport(t, r, "fig10")
	// Paper: when lights >= 9 there is in general an increase of low
	// speed, independent of the weather. Pool across classes.
	var fewSum, fewN, manySum, manyN float64
	for _, rec := range env.Res.Transitions() {
		if rec.Attrs.TrafficLights >= 9 {
			manySum += rec.LowSpeedPct
			manyN++
		} else {
			fewSum += rec.LowSpeedPct
			fewN++
		}
	}
	if manyN == 0 {
		t.Fatal("no routes with >= 9 lights")
	}
	if fewN > 0 && manySum/manyN <= fewSum/fewN {
		t.Fatalf("routes with >=9 lights must show more low speed: %.1f vs %.1f",
			manySum/manyN, fewSum/fewN)
	}
}

func TestSeasonalDeltasReport(t *testing.T) {
	env := testEnv(t)
	r := SeasonalDeltas(env)
	checkReport(t, r, "seasonal")
	if !strings.Contains(r.Text, "annual mean point speed") {
		t.Fatal("seasonal report missing annual mean")
	}
	for _, s := range []weather.Season{weather.Winter, weather.Spring, weather.Summer, weather.Autumn} {
		if !strings.Contains(r.Text, s.String()) {
			t.Fatalf("seasonal report missing %s", s)
		}
	}
}

func TestAllRunsEveryExperiment(t *testing.T) {
	reports := All(testEnv(t))
	wantIDs := []string{"table1", "table2", "table3", "table4", "table5",
		"fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10",
		"seasonal", "features", "odmatrix"}
	if len(reports) != len(wantIDs) {
		t.Fatalf("All returned %d reports, want %d", len(reports), len(wantIDs))
	}
	for i, r := range reports {
		if r.ID != wantIDs[i] {
			t.Fatalf("report %d = %s, want %s", i, r.ID, wantIDs[i])
		}
	}
}

func TestFeatureAssociations(t *testing.T) {
	env := testEnv(t)
	r := FeatureAssociations(env)
	checkReport(t, r, "features")
	fit, err := env.P.FeatureModel(env.Res.Transitions())
	if err != nil {
		t.Fatalf("FeatureModel: %v", err)
	}
	if len(fit.Coef) != len(core.FeatureNames)+1 {
		t.Fatalf("coefficients = %d", len(fit.Coef))
	}
	// Paper expectation: traffic lights decrease the average speed.
	if fit.Coef[1] >= 0 {
		t.Fatalf("traffic-light coefficient %.3f should be negative", fit.Coef[1])
	}
	if !strings.Contains(r.Text, "traffic_lights") {
		t.Fatal("report must name the covariates")
	}
}

func TestFigure2(t *testing.T) {
	env := testEnv(t)
	r := Figure2(env)
	checkReport(t, r, "fig2")
	if len(r.Artifacts) != 1 {
		t.Fatalf("Figure 2 artifacts = %d", len(r.Artifacts))
	}
	svg := string(r.Artifacts[0].Data)
	if !strings.Contains(svg, "stroke-opacity") {
		t.Fatal("thick geometry band missing from Fig 2")
	}
}

func TestODMatrix(t *testing.T) {
	env := testEnv(t)
	r := ODMatrix(env)
	checkReport(t, r, "odmatrix")
	for _, g := range []string{"T", "S", "L"} {
		if !strings.Contains(r.Text, g) {
			t.Fatalf("matrix missing gate %s", g)
		}
	}
	if !strings.Contains(r.Text, "total transitions:") {
		t.Fatal("matrix missing total")
	}
}

func TestPointSpeedVolume(t *testing.T) {
	// Sanity proxy for the paper's "30469 measured point speeds": the
	// test-scale env must still produce thousands.
	env := testEnv(t)
	speeds := core.PointSpeeds(env.Res.Transitions())
	if len(speeds) < 1000 {
		t.Fatalf("only %d point speeds", len(speeds))
	}
}

func TestAblations(t *testing.T) {
	env := testEnv(t)
	reports := Ablations(env)
	if len(reports) != 3 {
		t.Fatalf("ablations = %d reports", len(reports))
	}
	ids := map[string]bool{}
	for _, r := range reports {
		if r.Text == "" || r.Title == "" {
			t.Fatalf("ablation %s empty", r.ID)
		}
		ids[r.ID] = true
	}
	for _, want := range []string{"ablation-matchers", "ablation-thickness", "ablation-ordering"} {
		if !ids[want] {
			t.Fatalf("missing ablation %s", want)
		}
	}
}

func TestAblationOrderingAsymmetry(t *testing.T) {
	// The paper's rule must dominate the timestamp-only sort in the
	// timestamp-jitter regime; parse the report text for the counts.
	env := testEnv(t)
	r := AblationOrderingRepair(env)
	if !strings.Contains(r.Text, "timestamp-jitter corruption") {
		t.Fatalf("report missing jitter section:\n%s", r.Text)
	}
	// In the jitter regime the paper's rule must dominate the
	// timestamp-only sort decisively.
	jitter := r.Text[strings.Index(r.Text, "timestamp-jitter"):]
	var total, minOK, tsOK int
	if _, err := fmt.Sscanf(jitter,
		"timestamp-jitter corruption over %d trips:\n"+
			"  min-distance rule recovered the true path: %d",
		&total, &minOK); err != nil {
		t.Fatalf("cannot parse jitter section: %v\n%s", err, jitter)
	}
	tsLine := jitter[strings.Index(jitter, "timestamp-only"):]
	if _, err := fmt.Sscanf(tsLine, "timestamp-only sort recovered it:          %d", &tsOK); err != nil {
		t.Fatalf("cannot parse timestamp-only line: %v\n%s", err, tsLine)
	}
	if minOK <= tsOK {
		t.Fatalf("min-distance (%d) must beat timestamp-only (%d) under jitter", minOK, tsOK)
	}
	if float64(tsOK) > 0.5*float64(total) {
		t.Fatalf("timestamp-only recovered %d/%d under jitter; should mostly fail", tsOK, total)
	}
}

func TestEcoRoutesExtension(t *testing.T) {
	env := testEnv(t)
	reports := Extensions(env)
	if len(reports) != 2 {
		t.Fatalf("extensions = %d", len(reports))
	}
	r := reports[0]
	checkReport(t, r, "ecoroutes")
	if !strings.Contains(r.Text, "driving coach fleet summary") {
		t.Fatal("missing coach summary")
	}
	if !strings.Contains(r.Text, "*") {
		t.Fatal("no eco-best variant marked")
	}
}

func TestHotspotRecoveryExtension(t *testing.T) {
	env := testEnv(t)
	r := HotspotRecovery(env)
	checkReport(t, r, "hotspots")
	if !strings.Contains(r.Text, "planted hotspots found") {
		t.Fatal("missing recovery line")
	}
	var detected int
	var precision float64
	var found, total int
	line := r.Text[strings.Index(r.Text, "flagged cells:"):]
	if _, err := fmt.Sscanf(line, "flagged cells: %d, precision %f, planted hotspots found %d/%d",
		&detected, &precision, &found, &total); err != nil {
		t.Fatalf("cannot parse recovery line: %v\n%s", err, line)
	}
	if found != total {
		t.Fatalf("planted hotspots missed: %d/%d", found, total)
	}
	if precision < 0.5 {
		t.Fatalf("precision %.2f too low", precision)
	}
}

func TestEnvironmentDeterministic(t *testing.T) {
	// Two environments from the same config must print identical
	// funnels: the whole experiment battery is reproducible.
	a := testEnv(t)
	b, err := NewEnv(a.Cfg)
	if err != nil {
		t.Fatal(err)
	}
	if Table3(a).Text != Table3(b).Text {
		t.Fatal("Table 3 differs between identical environments")
	}
	if Table4(a).Text != Table4(b).Text {
		t.Fatal("Table 4 differs between identical environments")
	}
}
