package experiments

import (
	"bytes"
	"fmt"
	"math"
	"sort"

	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/render"
	"repro/internal/stats"
	"repro/internal/weather"
)

// carTransitions returns one car's transitions.
func carTransitions(env *Env, car int) []*core.TransitionRecord {
	var out []*core.TransitionRecord
	for _, rec := range env.Res.Transitions() {
		if rec.Car == car {
			out = append(out, rec)
		}
	}
	return out
}

// speedMapSVG renders positioned point speeds over the study area.
func speedMapSVG(env *Env, recs []*core.TransitionRecord, keep func(*core.TransitionRecord) bool) []byte {
	c := render.NewCanvas(env.P.City.StudyArea, 900)
	// Road network backdrop.
	for i := range env.P.Graph.Edges {
		c.Polyline(env.P.Graph.Edges[i].Geom, "#dddddd", 1)
	}
	for _, rec := range recs {
		if keep != nil && !keep(rec) {
			continue
		}
		for _, sp := range core.TransitionSpeedPoints(rec) {
			c.Circle(sp.Pos, 2, render.SpeedColor(sp.SpeedKmh, 60))
		}
	}
	c.SpeedLegend(60)
	var buf bytes.Buffer
	c.WriteTo(&buf)
	return buf.Bytes()
}

// Figure3 reproduces the cleaned point-speed map for one taxi
// (paper Fig 3, taxi 1 with 4186 points).
func Figure3(env *Env, car int) *Report {
	recs := carTransitions(env, car)
	n := 0
	var speeds []float64
	for _, rec := range recs {
		pts := core.TransitionSpeedPoints(rec)
		n += len(pts)
		for _, sp := range pts {
			speeds = append(speeds, sp.SpeedKmh)
		}
	}
	var w bytes.Buffer
	fmt.Fprintf(&w, "taxi %d: %d transitions, %d measured point speeds\n", car, len(recs), n)
	fmt.Fprintf(&w, "speed summary: %s\n", stats.Summarize(speeds))
	svg := speedMapSVG(env, recs, nil)
	return report("fig3", fmt.Sprintf("Fig 3: cleaned and preprocessed speed data for taxi %d", car),
		&w, Artifact{Name: fmt.Sprintf("fig3_taxi%d.svg", car), Data: svg})
}

// Figure4 splits one taxi's speed data by OD direction (paper Fig 4).
func Figure4(env *Env, car int) *Report {
	recs := carTransitions(env, car)
	var w bytes.Buffer
	var arts []Artifact
	for _, dir := range Table4Directions {
		var speeds []float64
		for _, rec := range recs {
			if rec.Direction() != dir {
				continue
			}
			for _, sp := range core.TransitionSpeedPoints(rec) {
				speeds = append(speeds, sp.SpeedKmh)
			}
		}
		fmt.Fprintf(&w, "%-4s %s\n", dir, stats.Summarize(speeds))
		d := dir
		arts = append(arts, Artifact{
			Name: fmt.Sprintf("fig4_taxi%d_%s.svg", car, dir),
			Data: speedMapSVG(env, recs, func(r *core.TransitionRecord) bool { return r.Direction() == d }),
		})
	}
	return report("fig4", fmt.Sprintf("Fig 4: taxi %d data categorized by direction", car), &w, arts...)
}

// Figure5 splits one taxi's speed data by season (paper Fig 5).
func Figure5(env *Env, car int) *Report {
	recs := carTransitions(env, car)
	var w bytes.Buffer
	var arts []Artifact
	for _, season := range []weather.Season{weather.Winter, weather.Spring, weather.Summer, weather.Autumn} {
		var speeds []float64
		for _, rec := range recs {
			if rec.Season != season {
				continue
			}
			for _, sp := range core.TransitionSpeedPoints(rec) {
				speeds = append(speeds, sp.SpeedKmh)
			}
		}
		fmt.Fprintf(&w, "%-7s %s\n", season, stats.Summarize(speeds))
		s := season
		arts = append(arts, Artifact{
			Name: fmt.Sprintf("fig5_taxi%d_%s.svg", car, season),
			Data: speedMapSVG(env, recs, func(r *core.TransitionRecord) bool { return r.Season == s }),
		})
	}
	return report("fig5", fmt.Sprintf("Fig 5: taxi %d data categorized by season", car), &w, arts...)
}

// Figure6 renders the L-T average cell speeds with per-cell feature
// counts (paper Fig 6) and the study-area feature totals.
func Figure6(env *Env) *Report {
	// Aggregate only L-T transitions on the grid.
	var lt []*core.TransitionRecord
	for _, rec := range env.Res.Transitions() {
		if rec.Direction() == "L-T" {
			lt = append(lt, rec)
		}
	}
	agg, _, _ := env.P.GridAnalysis(lt)

	c := render.NewCanvas(env.P.City.StudyArea, 1000)
	for i := range env.P.Graph.Edges {
		c.Polyline(env.P.Graph.Edges[i].Geom, "#e8e8e8", 1)
	}
	var w bytes.Buffer
	fmt.Fprintln(&w, studyAreaTotals(env))
	fmt.Fprintf(&w, "%-10s %6s %6s %7s %7s %6s %6s\n",
		"cell", "n", "mean", "lights", "stops", "ped", "junc")
	c.SpeedLegend(60)
	for _, cell := range agg.Cells() {
		rect := agg.Grid.CellRect(cell.ID)
		c.Rect(rect, render.SpeedColor(cell.Speed.Mean(), 60), 0.55)
		f := cell.Features
		c.Text(rect.Center(), fmt.Sprintf("%d,%d,%d,%d",
			f.TrafficLights, f.BusStops, f.PedestrianCrossings, f.Junctions), 9, "#333333")
		fmt.Fprintf(&w, "%-10s %6d %6.1f %7d %7d %6d %6d\n",
			cell.ID, cell.Speed.N(), cell.Speed.Mean(),
			f.TrafficLights, f.BusStops, f.PedestrianCrossings, f.Junctions)
	}
	var buf bytes.Buffer
	c.WriteTo(&buf)
	return report("fig6", "Fig 6: average speed and map properties for L-T direction", &w,
		Artifact{Name: "fig6_lt_cells.svg", Data: buf.Bytes()})
}

// Figure7 builds the cell-intercept regularisation QQ plot (paper
// Fig 7).
func Figure7(env *Env) *Report {
	blups := env.LMM.BLUPs()
	qq := stats.NormalQQ(blups)
	var w bytes.Buffer
	fmt.Fprintf(&w, "%10s %10s\n", "theoretical", "sample")
	for _, p := range qq {
		fmt.Fprintf(&w, "%10.4f %10.4f\n", p.Theoretical, p.Sample)
	}

	sd := math.Sqrt(env.LMM.SigmaA2)
	minY, maxY := stats.MinMax(blups)
	chart := render.NewXYChart(-3, 3, minY-1, maxY+1, 700, 500)
	chart.Line(-3, -3*sd, 3, 3*sd, "#888888") // reference: N(0, sigmaA)
	for _, p := range qq {
		chart.Point(p.Theoretical, p.Sample, 2.4, "#1f5fbf")
	}
	chart.Label(-2.9, maxY+0.5, fmt.Sprintf("cell intercept QQ, sigma_a=%.2f km/h", sd), 13)
	var buf bytes.Buffer
	chart.WriteTo(&buf)
	return report("fig7", "Fig 7: cell intercept regularization QQ-plot", &w,
		Artifact{Name: "fig7_qq.svg", Data: buf.Bytes()})
}

// Figure8 plots the cell intercept BLUPs with 95 % confidence limits,
// ordered by effect (paper Fig 8).
func Figure8(env *Env) *Report {
	effects := append([]stats.GroupEffect(nil), env.LMM.Groups...)
	sort.Slice(effects, func(i, j int) bool { return effects[i].BLUP < effects[j].BLUP })

	var w bytes.Buffer
	fmt.Fprintf(&w, "%-10s %6s %9s %9s %9s\n", "cell", "n", "blup", "lo95", "hi95")
	minY, maxY := 0.0, 0.0
	for _, e := range effects {
		lo, hi := e.BLUP-1.96*e.SE, e.BLUP+1.96*e.SE
		fmt.Fprintf(&w, "%-10s %6d %9.3f %9.3f %9.3f\n", e.Name, e.N, e.BLUP, lo, hi)
		if lo < minY {
			minY = lo
		}
		if hi > maxY {
			maxY = hi
		}
	}
	chart := render.NewXYChart(0, float64(len(effects)+1), minY-1, maxY+1, 900, 500)
	for i, e := range effects {
		x := float64(i + 1)
		chart.VLineSegment(x, e.BLUP-1.96*e.SE, e.BLUP+1.96*e.SE, "#999999")
		chart.Point(x, e.BLUP, 2, "#c02020")
	}
	chart.Line(0, 0, float64(len(effects)+1), 0, "#444444")
	var buf bytes.Buffer
	chart.WriteTo(&buf)
	return report("fig8", "Fig 8: cell intercepts with confidence limits", &w,
		Artifact{Name: "fig8_intercepts.svg", Data: buf.Bytes()})
}

// Figure9 renders the BLUP predictions on the map (paper Fig 9).
func Figure9(env *Env) *Report {
	byName := map[string]stats.GroupEffect{}
	maxAbs := 0.0
	for _, e := range env.LMM.Groups {
		byName[e.Name] = e
		if a := math.Abs(e.BLUP); a > maxAbs {
			maxAbs = a
		}
	}
	c := render.NewCanvas(env.P.City.StudyArea, 1000)
	for i := range env.P.Graph.Edges {
		c.Polyline(env.P.Graph.Edges[i].Geom, "#e0e0e0", 1)
	}
	var w bytes.Buffer
	blups := env.LMM.BLUPs()
	mn, mx := stats.MinMax(blups)
	fmt.Fprintf(&w, "cells: %d, BLUP range: %.2f .. %.2f km/h (paper: ~-15 .. +20)\n",
		len(blups), mn, mx)
	fmt.Fprintf(&w, "grand mean mu = %.2f km/h, sigma_a = %.2f, sigma = %.2f\n",
		env.LMM.Mu, math.Sqrt(env.LMM.SigmaA2), math.Sqrt(env.LMM.Sigma2))
	for _, cell := range env.Agg.Cells() {
		e, ok := byName[cell.ID.String()]
		if !ok {
			continue
		}
		rect := env.Agg.Grid.CellRect(cell.ID)
		c.Rect(rect, render.DivergingColor(e.BLUP, maxAbs), 0.75)
	}
	c.DivergingLegend(maxAbs, "km/h")
	var buf bytes.Buffer
	c.WriteTo(&buf)
	return report("fig9", "Fig 9: cell intercept predictions on map", &w,
		Artifact{Name: "fig9_blup_map.svg", Data: buf.Bytes()})
}

// Figure10 tabulates the low-speed share by temperature class for
// routes with fewer vs at least 9 traffic lights (paper Fig 10).
func Figure10(env *Env) *Report {
	// The paper's boundary (9) was "experimentally chosen" near the
	// upper middle of its light-count distribution; the synthetic city
	// is more compact, so take the median route light count, floored
	// at the paper's value.
	var counts []float64
	for _, rec := range env.Res.Transitions() {
		counts = append(counts, float64(rec.Attrs.TrafficLights))
	}
	lightThreshold := int(stats.Quantile(counts, 0.5))
	if lightThreshold < 9 {
		lightThreshold = 9
	}
	type bucket struct {
		sum float64
		n   int
	}
	var cold [weather.NumTemperatureClasses]bucket // lights < 9
	var busy [weather.NumTemperatureClasses]bucket // lights >= 9
	for _, rec := range env.Res.Transitions() {
		b := &cold[rec.TempClass]
		if rec.Attrs.TrafficLights >= lightThreshold {
			b = &busy[rec.TempClass]
		}
		b.sum += rec.LowSpeedPct
		b.n++
	}
	var w bytes.Buffer
	fmt.Fprintf(&w, "light-count boundary: %d (paper: 9)\n", lightThreshold)
	fmt.Fprintf(&w, "%-10s %18s %18s\n", "tempclass",
		fmt.Sprintf("lights<%d (low%%)", lightThreshold),
		fmt.Sprintf("lights>=%d (low%%)", lightThreshold))
	chart := render.NewXYChart(0, float64(weather.NumTemperatureClasses)+0.5, 0, 100, 700, 450)
	for tc := weather.TemperatureClass(0); tc < weather.NumTemperatureClasses; tc++ {
		lo, hi := math.NaN(), math.NaN()
		if cold[tc].n > 0 {
			lo = cold[tc].sum / float64(cold[tc].n)
		}
		if busy[tc].n > 0 {
			hi = busy[tc].sum / float64(busy[tc].n)
		}
		fmt.Fprintf(&w, "%-10s %12.1f (n=%2d) %12.1f (n=%2d)\n", tc, lo, cold[tc].n, hi, busy[tc].n)
		x := float64(tc) + 0.75
		if !math.IsNaN(lo) {
			chart.Bar(x-0.12, lo, 0.2, "#ffffff")
		}
		if !math.IsNaN(hi) {
			chart.Bar(x+0.12, hi, 0.2, "#9a9a9a")
		}
		chart.Label(x-0.25, -3, tc.String(), 11)
	}
	var buf bytes.Buffer
	chart.WriteTo(&buf)
	return report("fig10", "Fig 10: low speed % by temperature class and traffic-light count", &w,
		Artifact{Name: "fig10_lowspeed_weather.svg", Data: buf.Bytes()})
}

// Figure2 renders the selected origin-destination pairs with their
// thick geometries and a few accepted transitions (paper Fig 2).
func Figure2(env *Env) *Report {
	c := render.NewCanvas(env.P.City.StudyArea.Expand(250), 1000)
	for i := range env.P.Graph.Edges {
		c.Polyline(env.P.Graph.Edges[i].Geom, "#d8d8d8", 1)
	}
	// Thick gate geometries: wide translucent strokes over the gates.
	gates := []struct {
		name string
		geom geo.Polyline
	}{
		{"T", env.P.City.GateT},
		{"S", env.P.City.GateS},
		{"L", env.P.City.GateL},
	}
	width := env.P.Config.GateWidthM
	for _, g := range gates {
		c.WidePolyline(g.geom, "#d02020", width, 0.35)
		c.Polyline(g.geom, "#d02020", 3)
		c.Text(g.geom.PointAt(g.geom.Length()/2).Add(geo.V(40, 40)), g.name, 26, "#a01010")
	}
	// Central area frame.
	c.RectOutline(env.P.City.CentralArea, "#2050c0", 2)
	// A few accepted transitions, one per direction.
	seen := map[string]bool{}
	drawn := 0
	for _, rec := range env.Res.Transitions() {
		if seen[rec.Direction()] {
			continue
		}
		seen[rec.Direction()] = true
		c.Polyline(rec.Match.Geometry, "#208040", 2)
		drawn++
	}
	var w bytes.Buffer
	fmt.Fprintf(&w, "gates T, S, L with %.0f m thick geometry; central area %.1f x %.1f km; %d example transitions drawn\n",
		width, env.P.City.CentralArea.Width()/1000, env.P.City.CentralArea.Height()/1000, drawn)
	var buf bytes.Buffer
	c.WriteTo(&buf)
	return report("fig2", "Fig 2: selected origin-destination pairs and thick geometry",
		&w, Artifact{Name: "fig2_gates.svg", Data: buf.Bytes()})
}
