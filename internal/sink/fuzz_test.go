package sink

import (
	"errors"
	"testing"

	"repro/internal/obs"
)

// FuzzDecodeSnapshot drives the TAXISNPB decode path with arbitrary
// bytes. The invariants: decoding never panics, every failure is one of
// the two typed errors, and every accepted snapshot re-encodes and
// re-decodes cleanly and survives a self-merge (or fails it with a
// typed mismatch). The committed seed corpus under
// testdata/fuzz/FuzzDecodeSnapshot replays on every plain `go test`.
func FuzzDecodeSnapshot(f *testing.F) {
	f.Add([]byte{})
	f.Add(EncodeSnapshot(&Snapshot{}))
	f.Add(EncodeSnapshot(&Snapshot{Epoch: 3, CarsIngested: 2, Points: 9, Complete: true}))
	f.Add(EncodeSnapshot(profileFixture(4)))
	// The previous format version: a v2 blob of a profile-less snapshot
	// minus its trailing zero profile count, version byte rewound.
	v1 := EncodeSnapshot(&Snapshot{Epoch: 3, Points: 9})
	v1 = v1[:len(v1)-1]
	v1[8] = snapshotVersionV1
	f.Add(v1)
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := DecodeSnapshot(data)
		if err != nil {
			if !errors.Is(err, ErrBadSnapshot) && !errors.Is(err, ErrUnknownSnapshotVersion) {
				t.Fatalf("untyped decode error: %v", err)
			}
			return
		}
		blob := EncodeSnapshot(s)
		again, err := DecodeSnapshot(blob)
		if err != nil {
			t.Fatalf("accepted snapshot does not re-decode: %v", err)
		}
		if again.Epoch != s.Epoch || again.Points != s.Points || len(again.Cells) != len(s.Cells) ||
			len(again.OD) != len(s.OD) || len(again.EdgeProfiles) != len(s.EdgeProfiles) {
			t.Fatalf("re-decode drift: %+v vs %+v", again, s)
		}
		if _, err := MergeSnapshots(s, again); err != nil &&
			!errors.Is(err, ErrFrameMismatch) && !errors.Is(err, obs.ErrLayoutMismatch) {
			t.Fatalf("untyped merge error: %v", err)
		}
	})
}
