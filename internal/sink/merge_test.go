package sink

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/grid"
	"repro/internal/obs"
	"repro/internal/roadnet"
)

// shardSnapshot runs a slice of cars through a fresh sink on the
// standard test frame and seals it — one cluster worker's output.
func shardSnapshot(t *testing.T, cars []core.CarResult) *Snapshot {
	t.Helper()
	g, err := grid.New(geo.R(0, 0, 2000, 2000), 200)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{Grid: g, Shards: 2, PublishEvery: 1, Gates: []string{"T", "S"}})
	if err != nil {
		t.Fatal(err)
	}
	for _, cr := range cars {
		s.AbsorbEvent(core.CarEvent{Car: cr.Car, Result: cr})
	}
	return s.Seal()
}

// snapshotsEquivalent compares two snapshots value-for-value with the
// differential test's tolerance: integers, extrema and histogram
// buckets exactly; means and variances to within accumulation-order
// rounding (feq).
func snapshotsEquivalent(t *testing.T, got, want *Snapshot) {
	t.Helper()
	if got.CarsIngested != want.CarsIngested || got.CarsFailed != want.CarsFailed ||
		got.Points != want.Points || got.Complete != want.Complete {
		t.Fatalf("counter mismatch:\n got %+v\nwant %+v", got, want)
	}
	if len(got.Cells) != len(want.Cells) {
		t.Fatalf("cell count %d vs %d", len(got.Cells), len(want.Cells))
	}
	for id, w := range want.Cells {
		g, ok := got.Cells[id]
		if !ok {
			t.Fatalf("cell %v missing", id)
		}
		if g.N != w.N || g.MinKmh != w.MinKmh || g.MaxKmh != w.MaxKmh {
			t.Fatalf("cell %v: got %+v want %+v", id, g, w)
		}
		if !feq(g.MeanKmh, w.MeanKmh) || !feq(g.VarKmh, w.VarKmh) {
			t.Fatalf("cell %v moments: got %+v want %+v", id, g, w)
		}
	}
	if len(got.EdgeProfiles) != len(want.EdgeProfiles) {
		t.Fatalf("profile count %d vs %d", len(got.EdgeProfiles), len(want.EdgeProfiles))
	}
	for key, w := range want.EdgeProfiles {
		g, ok := got.EdgeProfiles[key]
		if !ok {
			t.Fatalf("profile %v missing", key)
		}
		if g.N != w.N || g.MinSPerKm != w.MinSPerKm || g.MaxSPerKm != w.MaxSPerKm {
			t.Fatalf("profile %v: got %+v want %+v", key, g, w)
		}
		if !feq(g.MeanSPerKm, w.MeanSPerKm) || !feq(g.VarSPerKm, w.VarSPerKm) {
			t.Fatalf("profile %v moments: got %+v want %+v", key, g, w)
		}
	}
	if len(got.OD) != len(want.OD) {
		t.Fatalf("OD count %d vs %d", len(got.OD), len(want.OD))
	}
	for key, w := range want.OD {
		g, ok := got.OD[key]
		if !ok {
			t.Fatalf("direction %v missing", key)
		}
		if g.Trips != w.Trips || g.Attrs != w.Attrs {
			t.Fatalf("direction %v: got %+v want %+v", key, g, w)
		}
		if !g.TravelTimeS.Equal(w.TravelTimeS) {
			t.Fatalf("direction %v travel-time histograms differ", key)
		}
		for _, m := range []struct {
			name     string
			got, wnt MetricStats
		}{
			{"dist", g.DistKm, w.DistKm},
			{"fuel", g.FuelMl, w.FuelMl},
			{"low-speed", g.LowSpeedPct, w.LowSpeedPct},
			{"normal-speed", g.NormalSpeedPct, w.NormalSpeedPct},
		} {
			if m.got.N != m.wnt.N || m.got.Min != m.wnt.Min || m.got.Max != m.wnt.Max || !feq(m.got.Mean, m.wnt.Mean) {
				t.Fatalf("direction %v metric %s: got %+v want %+v", key, m.name, m.got, m.wnt)
			}
		}
	}
}

// mergeFleet builds a deterministic 12-car fleet split across 4 shards
// plus the whole-fleet single-sink reference.
func mergeFleet(t *testing.T) (shards []*Snapshot, whole *Snapshot) {
	t.Helper()
	dirs := []string{"T-S", "S-T"}
	var all []core.CarResult
	byShard := make([][]core.CarResult, 4)
	for car := 1; car <= 12; car++ {
		var cr core.CarResult
		if car%3 == 0 {
			// A third of the fleet carries a matched route, so the merge
			// algebra is exercised over edge profiles too.
			cr = matchedCar(car, roadnet.EdgeID(car%2), 8+car%2, 100+float64(car)*10, 4)
		} else {
			cr = synthCar(car, dirs[car%2],
				10+float64(car), 25+float64(car%5)*3, 40+float64(car%3)*7, 55)
		}
		all = append(all, cr)
		byShard[car%4] = append(byShard[car%4], cr)
	}
	for _, cars := range byShard {
		shards = append(shards, shardSnapshot(t, cars))
	}
	return shards, shardSnapshot(t, all)
}

// TestMergeSnapshotsPermutationInvariance is the merge-algebra property
// test: folding the shard snapshots in any order yields the single-sink
// fleet aggregate, covering Welford cell moments, grid coverage, OD
// histograms and metric moments.
func TestMergeSnapshotsPermutationInvariance(t *testing.T) {
	shards, whole := mergeFleet(t)
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 10; trial++ {
		perm := rng.Perm(len(shards))
		ordered := make([]*Snapshot, len(shards))
		for i, p := range perm {
			ordered[i] = shards[p]
		}
		merged, err := MergeSnapshots(ordered...)
		if err != nil {
			t.Fatalf("perm %v: %v", perm, err)
		}
		snapshotsEquivalent(t, merged, whole)
		if merged.Grid == nil || !sameFrame(merged.Grid, whole.Grid) {
			t.Fatalf("perm %v: frame lost in merge", perm)
		}
		if !merged.Complete {
			t.Fatalf("perm %v: all shards sealed, merge must be sealed", perm)
		}
	}
}

// TestMergeSnapshotsEmptyIdentity: the sealed empty snapshot is the
// merge identity, and merging is left- and right-identical.
func TestMergeSnapshotsEmptyIdentity(t *testing.T) {
	_, whole := mergeFleet(t)
	empty := shardSnapshot(t, nil)
	if empty.Points != 0 || len(empty.Cells) != 0 {
		t.Fatalf("empty shard not empty: %+v", empty)
	}
	for _, order := range [][]*Snapshot{{whole, empty}, {empty, whole}, {empty, whole, empty}} {
		merged, err := MergeSnapshots(order...)
		if err != nil {
			t.Fatal(err)
		}
		snapshotsEquivalent(t, merged, whole)
	}
	// Nil snapshots are skipped outright.
	merged, err := MergeSnapshots(nil, whole, nil)
	if err != nil {
		t.Fatal(err)
	}
	snapshotsEquivalent(t, merged, whole)
}

func TestMergeSnapshotsFlags(t *testing.T) {
	shards, _ := mergeFleet(t)
	unsealed := *shards[0]
	unsealed.Complete = false
	merged, err := MergeSnapshots(shards[1], &unsealed)
	if err != nil {
		t.Fatal(err)
	}
	if merged.Complete {
		t.Fatal("one unsealed shard must keep the fleet unsealed")
	}
	if merged.Epoch != max(shards[0].Epoch, shards[1].Epoch) {
		t.Fatalf("epoch must be the max, got %d", merged.Epoch)
	}
	if m, err := MergeSnapshots(); err != nil || m.Complete || m.Points != 0 {
		t.Fatalf("zero-input merge: %+v, %v", m, err)
	}
}

func TestMergeSnapshotsRejectsFrameMismatch(t *testing.T) {
	shards, _ := mergeFleet(t)

	other, err := grid.New(geo.R(0, 0, 1000, 1000), 100)
	if err != nil {
		t.Fatal(err)
	}
	foreign := *shards[0]
	foreign.Grid = other
	if _, err := MergeSnapshots(shards[1], &foreign); !errors.Is(err, ErrFrameMismatch) {
		t.Fatalf("want ErrFrameMismatch, got %v", err)
	}

	regates := *shards[0]
	regates.Gates = []string{"T", "S", "K"}
	if _, err := MergeSnapshots(shards[1], &regates); !errors.Is(err, ErrFrameMismatch) {
		t.Fatalf("want ErrFrameMismatch for gate skew, got %v", err)
	}
}

func TestMergeSnapshotsRejectsLayoutMismatch(t *testing.T) {
	_, whole := mergeFleet(t)

	// Re-decode the fleet snapshot with a tampered histogram layout
	// stamp: the cross-layout rejection must survive the wire. Merging
	// with the untampered original overlaps on every direction, so the
	// foreign layout is guaranteed to meet a native one.
	blob := EncodeSnapshot(whole)
	key := ODKey{From: "T", To: "S"}
	hist, err := whole.OD[key].TravelTimeS.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	i := bytes.Index(blob, hist)
	if i < 0 {
		t.Fatal("histogram bytes not found in snapshot encoding")
	}
	blob[i+1]++ // SubBits of the embedded layout stamp
	foreign, err := DecodeSnapshot(blob)
	if err != nil {
		t.Fatalf("tampered layout still decodes (rejection happens at merge): %v", err)
	}
	if _, err := MergeSnapshots(whole, foreign); !errors.Is(err, obs.ErrLayoutMismatch) {
		t.Fatalf("want ErrLayoutMismatch, got %v", err)
	}
}
