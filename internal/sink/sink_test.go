package sink

import (
	"context"
	"fmt"
	"math"
	"sync"
	"testing"
	"time"

	"repro/internal/check"
	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/grid"
	"repro/internal/obs"
	"repro/internal/odselect"
	"repro/internal/runner"
	"repro/internal/trace"
	"repro/internal/tracegen"
)

// feq compares floats to within accumulation-order rounding.
func feq(a, b float64) bool {
	if a == b {
		return true
	}
	return math.Abs(a-b) <= 1e-9*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

// synthCar builds a minimal CarResult with one transition of the given
// direction whose points sweep across the test grid.
func synthCar(car int, dir string, speeds ...float64) core.CarResult {
	from, to := dir[:1], dir[2:]
	tr := &trace.Trip{ID: int64(car), CarID: car}
	base := time.Date(2022, 3, 1, 12, 0, 0, 0, time.UTC)
	for i, v := range speeds {
		tr.Points = append(tr.Points, trace.RoutePoint{
			PointID: i, TripID: tr.ID,
			Pos:      geo.V(float64(50+200*i), float64(50+100*car)),
			Time:     base.Add(time.Duration(i) * 30 * time.Second),
			SpeedKmh: v,
		})
	}
	rec := &core.TransitionRecord{
		Car: car,
		Transition: &odselect.Transition{
			Seg: tr, From: from, To: to, Direction: dir,
			FromCross: geo.Crossing{EntryIndex: 0},
			ToCross:   geo.Crossing{ExitIndex: len(speeds) - 1},
		},
		RouteTimeH:  float64(len(speeds)-1) * 30 / 3600,
		RouteDistKm: 0.2 * float64(len(speeds)-1),
		FuelMl:      40,
		LowSpeedPct: 10,
	}
	return core.CarResult{Car: car, Transitions: []*core.TransitionRecord{rec}}
}

func testSink(t *testing.T, shards, publishEvery int) *Sink {
	t.Helper()
	g, err := grid.New(geo.R(0, 0, 2000, 2000), 200)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{Grid: g, Shards: shards, PublishEvery: publishEvery})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("nil grid accepted")
	}
}

func TestEmptySnapshotBeforeIngest(t *testing.T) {
	s := testSink(t, 4, 1)
	snap := s.Snapshot()
	if snap == nil || snap.Epoch != 0 || snap.Complete || len(snap.Cells) != 0 || len(snap.OD) != 0 {
		t.Fatalf("initial snapshot = %+v", snap)
	}
}

func TestAbsorbPublishSeal(t *testing.T) {
	s := testSink(t, 4, 1)
	cr1 := synthCar(1, "T-S", 30, 40, 50)
	cr2 := synthCar(2, "S-T", 10, 20)
	s.AbsorbEvent(core.CarEvent{Car: 1, Result: cr1})
	first := s.Snapshot()
	if first.Epoch != 1 || first.CarsIngested != 1 || first.Complete {
		t.Fatalf("after car 1: %+v", first)
	}
	if first.OD[ODKey{From: "T", To: "S"}].Trips != 1 || first.Points != 3 {
		t.Fatalf("after car 1: od %+v points %d", first.OD, first.Points)
	}

	s.AbsorbEvent(core.CarEvent{Car: 2, Result: cr2})
	s.AbsorbEvent(core.CarEvent{Car: 3, Err: &core.CarError{Car: 3}})
	final := s.Seal()
	if got := s.Snapshot(); got != final {
		t.Fatal("Snapshot must return the sealed epoch")
	}
	if !final.Complete || final.CarsIngested != 2 || final.CarsFailed != 1 {
		t.Fatalf("sealed: %+v", final)
	}
	if final.Epoch <= first.Epoch {
		t.Fatalf("epoch did not advance: %d -> %d", first.Epoch, final.Epoch)
	}
	if len(final.Directions()) != 2 {
		t.Fatalf("directions = %v", final.Directions())
	}

	// The earlier epoch is immutable: car 2 must not have leaked in.
	if first.CarsIngested != 1 || first.OD[ODKey{From: "S", To: "T"}].Trips != 0 || len(first.OD) != 1 {
		t.Fatalf("epoch %d mutated after later publishes: %+v", first.Epoch, first)
	}

	// Travel-time histogram carries both trips' durations exactly.
	h := &obs.Histogram{}
	h.Observe(2 * 30)
	if od := final.OD[ODKey{From: "T", To: "S"}]; !od.TravelTimeS.Equal(h.Freeze()) {
		t.Fatalf("T-S travel hist: count=%d", od.TravelTimeS.Count())
	}
	// Cell stats: car 1's three points land in three distinct cells on
	// row J=0 (y=150 < 200), car 2's two points on row y=250.
	if len(final.Cells) != 5 {
		t.Fatalf("cells = %d, want 5 (%v)", len(final.Cells), final.CellIDs())
	}
	c, ok := final.Cells[grid.CellID{I: 0, J: 0}]
	if !ok || c.N != 1 || c.MeanKmh != 30 {
		t.Fatalf("cell (0,0) = %+v ok=%v", c, ok)
	}
}

func TestAutoPublishCadence(t *testing.T) {
	s := testSink(t, 2, 3)
	for car := 1; car <= 7; car++ {
		s.Absorb(&core.CarResult{Car: car})
	}
	// 7 cars at a cadence of 3 → publishes after cars 3 and 6.
	if e := s.Snapshot().Epoch; e != 2 {
		t.Fatalf("epoch = %d, want 2", e)
	}
	if got := s.Snapshot().CarsIngested; got != 6 {
		t.Fatalf("cars at epoch 2 = %d, want 6", got)
	}
	if got := s.Seal().CarsIngested; got != 7 {
		t.Fatalf("sealed cars = %d", got)
	}

	manual := testSink(t, 2, -1) // auto-publish disabled
	for car := 1; car <= 5; car++ {
		manual.Absorb(&core.CarResult{Car: car})
	}
	if e := manual.Snapshot().Epoch; e != 0 {
		t.Fatalf("auto-publish happened at cadence -1 (epoch %d)", e)
	}
	if snap := manual.Publish(); snap.Epoch != 1 || snap.CarsIngested != 5 {
		t.Fatalf("manual publish: %+v", snap)
	}
}

// TestConcurrentAbsorb hammers ingest and publish from many goroutines;
// under -race this is the sink's concurrency gate. The sealed totals
// must reconcile exactly.
func TestConcurrentAbsorb(t *testing.T) {
	s := testSink(t, 4, 2)
	const cars = 200
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for car := w; car < cars; car += 8 {
				dir := "T-S"
				if car%3 == 0 {
					dir = "S-L"
				}
				s.AbsorbEvent(core.CarEvent{Car: car, Result: synthCar(car%7, dir, 20, 30)})
			}
		}(w)
	}
	// Concurrent readers load snapshots while ingest runs.
	stop := make(chan struct{})
	var rwg sync.WaitGroup
	for r := 0; r < 4; r++ {
		rwg.Add(1)
		go func() {
			defer rwg.Done()
			var last uint64
			for {
				select {
				case <-stop:
					return
				default:
				}
				snap := s.Snapshot()
				if snap.Epoch < last {
					t.Error("epoch went backwards")
					return
				}
				last = snap.Epoch
				// Internal consistency: every snapshot's OD trip total
				// equals its ingested car count (each synthetic car has
				// exactly one transition).
				trips := 0
				for _, od := range snap.OD {
					trips += od.Trips
				}
				if trips != snap.CarsIngested {
					t.Errorf("epoch %d: %d trips vs %d cars", snap.Epoch, trips, snap.CarsIngested)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	rwg.Wait()
	final := s.Seal()
	if final.CarsIngested != cars {
		t.Fatalf("sealed cars = %d, want %d", final.CarsIngested, cars)
	}
	trips := 0
	for _, od := range final.OD {
		trips += od.Trips
	}
	if trips != cars {
		t.Fatalf("sealed trips = %d, want %d", trips, cars)
	}
}

// TestFinalSnapshotMatchesBatch is the acceptance gate: run a real
// fleet streaming into the sink, and verify the sealed snapshot is
// value-identical to an aggregation computed from the batch Result —
// integer counts (cells, points, trips, histogram buckets, attribute
// totals) exactly, floating moments to within accumulation-order
// rounding.
func TestFinalSnapshotMatchesBatch(t *testing.T) {
	p, err := core.NewPipeline(core.Config{
		CitySeed: 42,
		Fleet: tracegen.Config{
			Seed: 42, Cars: 3, TripsPerCar: 40, GateRunFraction: 0.3,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	g, err := GridForPipeline(p)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{Grid: g, Shards: 3, PublishEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.RunObserved(context.Background(), s.AbsorbEvent)
	if err != nil {
		t.Fatal(err)
	}
	snap := s.Seal()
	if !snap.Complete {
		t.Fatal("sealed snapshot not complete")
	}
	if snap.CarsIngested != len(res.Cars) {
		t.Fatalf("cars = %d, want %d", snap.CarsIngested, len(res.Cars))
	}

	recs := res.Transitions()
	if len(recs) == 0 {
		t.Fatal("fleet produced no transitions; widen the config")
	}

	// Reference grid aggregation, computed batch-style (sequentially,
	// in car order) from the same Result.
	ref := grid.NewAggregator(g)
	points := 0
	for _, rec := range recs {
		for _, sp := range core.TransitionSpeedPoints(rec) {
			if ref.Add(sp.Pos, sp.SpeedKmh) {
				points++
			}
		}
	}
	if snap.Points != points {
		t.Fatalf("points = %d, want %d", snap.Points, points)
	}
	if len(snap.Cells) != ref.NumNonEmpty() {
		t.Fatalf("cells = %d, want %d", len(snap.Cells), ref.NumNonEmpty())
	}
	for _, rc := range ref.Cells() {
		sc, ok := snap.Cells[rc.ID]
		if !ok {
			t.Fatalf("cell %v missing from snapshot", rc.ID)
		}
		if sc.N != rc.Speed.N() {
			t.Fatalf("cell %v: n=%d want %d", rc.ID, sc.N, rc.Speed.N())
		}
		if !feq(sc.MeanKmh, rc.Speed.Mean()) {
			t.Fatalf("cell %v: mean %g want %g", rc.ID, sc.MeanKmh, rc.Speed.Mean())
		}
		if rc.Speed.N() >= 2 && !feq(sc.VarKmh, rc.Speed.Variance()) {
			t.Fatalf("cell %v: var %g want %g", rc.ID, sc.VarKmh, rc.Speed.Variance())
		}
		if sc.MinKmh != rc.Speed.Min() || sc.MaxKmh != rc.Speed.Max() {
			t.Fatalf("cell %v: extrema %g/%g want %g/%g",
				rc.ID, sc.MinKmh, sc.MaxKmh, rc.Speed.Min(), rc.Speed.Max())
		}
	}

	// Reference OD statistics, batch-style.
	type refOD struct {
		trips  int
		travel *obs.Histogram
		dist   float64
		fuel   float64
		attrs  AttrTotals
	}
	refs := map[ODKey]*refOD{}
	for _, rec := range recs {
		dir := ODKey{From: rec.Transition.From, To: rec.Transition.To}
		r := refs[dir]
		if r == nil {
			r = &refOD{travel: &obs.Histogram{}}
			refs[dir] = r
		}
		r.trips++
		r.travel.Observe(rec.RouteTimeH * 3600)
		r.dist += rec.RouteDistKm
		r.fuel += rec.FuelMl
		r.attrs.TrafficLights += rec.Attrs.TrafficLights
		r.attrs.BusStops += rec.Attrs.BusStops
		r.attrs.PedestrianCrossings += rec.Attrs.PedestrianCrossings
		r.attrs.Junctions += rec.Attrs.Junctions
	}
	if len(snap.OD) != len(refs) {
		t.Fatalf("directions = %v, want %d", snap.Directions(), len(refs))
	}
	for dir, r := range refs {
		od, ok := snap.OD[dir]
		if !ok {
			t.Fatalf("direction %s missing", dir)
		}
		if od.Trips != r.trips || od.Attrs != r.attrs {
			t.Fatalf("%s: trips/attrs %+v, want %d/%+v", dir, od, r.trips, r.attrs)
		}
		if !od.TravelTimeS.Equal(r.travel.Freeze()) {
			t.Fatalf("%s: travel-time histogram differs from batch", dir)
		}
		if !feq(od.DistKm.Mean, r.dist/float64(r.trips)) {
			t.Fatalf("%s: dist mean %g want %g", dir, od.DistKm.Mean, r.dist/float64(r.trips))
		}
		if !feq(od.FuelMl.Mean, r.fuel/float64(r.trips)) {
			t.Fatalf("%s: fuel mean %g want %g", dir, od.FuelMl.Mean, r.fuel/float64(r.trips))
		}
	}

	// AbsorbResult over the batch Result must seal to the same values —
	// the CSV-ingest bridge is equivalent to the stream feed.
	s2, err := New(Config{Grid: g, Shards: 5, PublishEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	s2.AbsorbResult(res)
	snap2 := s2.Seal()
	if snap2.CarsIngested != snap.CarsIngested || snap2.Points != snap.Points ||
		len(snap2.Cells) != len(snap.Cells) || len(snap2.OD) != len(snap.OD) {
		t.Fatalf("AbsorbResult snapshot differs: %+v vs %+v", snap2, snap)
	}
	for dir, od := range snap.OD {
		if od2 := snap2.OD[dir]; od2.Trips != od.Trips || !od2.TravelTimeS.Equal(od.TravelTimeS) {
			t.Fatalf("%s: AbsorbResult OD differs", dir)
		}
	}
}

func TestMetricsWiring(t *testing.T) {
	reg := obs.NewRegistry()
	g, err := grid.New(geo.R(0, 0, 1000, 1000), 200)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{Grid: g, Shards: 2, PublishEvery: 1, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	s.AbsorbEvent(core.CarEvent{Car: 1, Result: synthCar(1, "T-S", 25, 35)})
	s.AbsorbEvent(core.CarEvent{Car: 2, Err: &core.CarError{Car: 2}})
	s.Seal()
	snap := reg.Snapshot()
	for name, want := range map[string]uint64{
		"sink_cars_absorbed": 1,
		"sink_cars_failed":   1,
		"sink_publishes":     2, // auto + seal
	} {
		if got := snap.Counters[name]; got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}
	if snap.Gauges["sink_epoch"] != 2 || snap.Gauges["sink_od_pairs"] != 1 {
		t.Errorf("gauges: %+v", snap.Gauges)
	}
}

func TestDirectionsAndCellIDsSorted(t *testing.T) {
	s := testSink(t, 1, -1)
	s.Absorb(&core.CarResult{Car: 1, Transitions: []*core.TransitionRecord{}})
	for car, dir := range []string{"T-S", "L-T", "S-L"} {
		s.AbsorbEvent(core.CarEvent{Car: car, Result: synthCar(car, dir, 20, 30, 40)})
	}
	snap := s.Publish()
	dirs := snap.Directions()
	if fmt.Sprint(dirs) != "[L-T S-L T-S]" {
		t.Fatalf("directions = %v", dirs)
	}
	ids := snap.CellIDs()
	for i := 1; i < len(ids); i++ {
		if ids[i-1].I > ids[i].I || (ids[i-1].I == ids[i].I && ids[i-1].J >= ids[i].J) {
			t.Fatalf("cell ids not sorted: %v", ids)
		}
	}
}

// TestFinalSnapshotMatchesBatchUnderFaults repeats the stream-vs-batch
// differential with the runner under fire: one car flaps with
// transient faults (recovered by retries), one car fails permanently.
// The sealed snapshot must still be value-identical to a batch
// aggregation of the partial Result — failed cars appear only in
// CarsFailed, never as partial aggregate contributions — and the
// invariant checker must stay silent through every epoch.
func TestFinalSnapshotMatchesBatchUnderFaults(t *testing.T) {
	var mu sync.Mutex
	flaps := 0
	p, err := core.NewPipeline(core.Config{
		CitySeed: 42,
		Fleet: tracegen.Config{
			Seed: 42, Cars: 4, TripsPerCar: 30, GateRunFraction: 0.3,
		},
		MaxAttempts: 3,
		Check:       check.Config{Strict: true},
		Faults: runner.FaultFunc(func(car int, stage string) error {
			switch {
			case car == 2 && stage == "mapmatch":
				mu.Lock()
				defer mu.Unlock()
				if flaps < 2 {
					flaps++
					return runner.Transient(fmt.Errorf("injected flap %d", flaps))
				}
				return nil
			case car == 3 && stage == "segment":
				return fmt.Errorf("injected permanent failure")
			}
			return nil
		}),
	})
	if err != nil {
		t.Fatal(err)
	}
	g, err := GridForPipeline(p)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{
		Grid: g, Shards: 3, PublishEvery: 1,
		Gates: p.Selector.GateNames(), Check: check.Config{Strict: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.RunObserved(context.Background(), s.AbsorbEvent)
	if err == nil {
		t.Fatal("permanent fault did not surface in the run error")
	}
	snap := s.Seal()
	if cerr := s.CheckErr(); cerr != nil {
		t.Fatalf("sink invariant checker tripped on a clean stream: %v", cerr)
	}

	if len(res.Cars) != 3 {
		t.Fatalf("partial result has %d cars, want 3 (car 3 failed)", len(res.Cars))
	}
	for _, cr := range res.Cars {
		if cr.Car == 3 {
			t.Fatal("failed car 3 leaked into the partial result")
		}
	}
	if snap.CarsIngested != 3 || snap.CarsFailed != 1 {
		t.Fatalf("ingested/failed = %d/%d, want 3/1", snap.CarsIngested, snap.CarsFailed)
	}
	if flaps != 2 {
		t.Fatalf("transient injector fired %d times, want 2", flaps)
	}

	recs := res.Transitions()
	if len(recs) == 0 {
		t.Fatal("no transitions survived; widen the config")
	}

	// Batch-style reference from the partial Result.
	ref := grid.NewAggregator(g)
	points := 0
	for _, rec := range recs {
		for _, sp := range core.TransitionSpeedPoints(rec) {
			if ref.Add(sp.Pos, sp.SpeedKmh) {
				points++
			}
		}
	}
	if snap.Points != points {
		t.Fatalf("points = %d, want %d", snap.Points, points)
	}
	if len(snap.Cells) != ref.NumNonEmpty() {
		t.Fatalf("cells = %d, want %d", len(snap.Cells), ref.NumNonEmpty())
	}
	for _, rc := range ref.Cells() {
		sc, ok := snap.Cells[rc.ID]
		if !ok {
			t.Fatalf("cell %v missing from snapshot", rc.ID)
		}
		if sc.N != rc.Speed.N() || !feq(sc.MeanKmh, rc.Speed.Mean()) {
			t.Fatalf("cell %v: n/mean %d/%g, want %d/%g",
				rc.ID, sc.N, sc.MeanKmh, rc.Speed.N(), rc.Speed.Mean())
		}
	}

	type refOD struct {
		trips  int
		travel *obs.Histogram
	}
	refs := map[ODKey]*refOD{}
	for _, rec := range recs {
		dir := ODKey{From: rec.Transition.From, To: rec.Transition.To}
		r := refs[dir]
		if r == nil {
			r = &refOD{travel: &obs.Histogram{}}
			refs[dir] = r
		}
		r.trips++
		r.travel.Observe(rec.RouteTimeH * 3600)
	}
	if len(snap.OD) != len(refs) {
		t.Fatalf("directions = %v, want %d", snap.Directions(), len(refs))
	}
	for dir, r := range refs {
		od, ok := snap.OD[dir]
		if !ok {
			t.Fatalf("direction %s missing", dir)
		}
		if od.Trips != r.trips || !od.TravelTimeS.Equal(r.travel.Freeze()) {
			t.Fatalf("%s: stream OD differs from batch (trips %d want %d)",
				dir, od.Trips, r.trips)
		}
	}
}
