package sink

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"time"

	"repro/internal/geo"
	"repro/internal/grid"
	"repro/internal/obs"
	"repro/internal/roadnet"
)

// TAXISNPB — the versioned snapshot wire format. This is the unit the
// cluster ships from worker to coordinator: one sealed (or in-flight)
// sink Snapshot with every mergeable sufficient statistic intact —
// Welford cell moments, OD trip counts, frozen travel-time histograms
// with their layout stamps, metric moments and attribute totals.
//
// Layout (little-endian; floats are fixed 8-byte IEEE 754 bits, counts
// are uvarints, cell indexes are signed varints):
//
//	[8]byte  magic "TAXISNPB"
//	u8       version (currently 2)
//	uvarint  epoch
//	u8       flags (bit0 Complete, bit1 grid present, bit2 publish time present)
//	uvarint  carsIngested, uvarint carsFailed, uvarint points
//	varint   publishedAt unix-nanos        (iff flag bit2)
//	f64 ×5   grid MinX,MinY,MaxX,MaxY,CellM (iff flag bit1)
//	uvarint  nGates, nGates × string        (uvarint len + bytes)
//	uvarint  nCells, nCells × cell
//	uvarint  nOD,    nOD × direction
//	uvarint  nProfiles, nProfiles × profile (version >= 2 only)
//
//	cell      = varint I, varint J, uvarint N, f64 mean, f64 var, f64 min, f64 max
//	direction = string from, string to, uvarint trips,
//	            frozen histogram (obs codec, self-delimiting),
//	            metric ×4 (dist, fuel, lowSpeed, normalSpeed), attrs ×4 uvarint
//	metric    = uvarint N, f64 mean, f64 min, f64 max
//	profile   = varint edge, uvarint hour, uvarint N,
//	            f64 mean, f64 var, f64 min, f64 max   (pace in s/km)
//
// Version history: v1 had no profile section; v2 (per-edge travel-time
// profiles) appends it after the directions. Decoding accepts both — a
// v1 blob yields a snapshot with nil EdgeProfiles, so a mixed-version
// cluster merges correctly (the old worker simply contributes no
// profiles) — and encoding always writes the current version.
//
// Decoding is strict: a wrong magic or unknown version is a typed
// error, every length is bounds-checked against the remaining input
// before any allocation, and embedded histograms go through the obs
// decoder so a corrupt or cross-layout blob can never silently enter a
// merge.
var snapshotMagic = [8]byte{'T', 'A', 'X', 'I', 'S', 'N', 'P', 'B'}

const (
	snapshotVersion = 2
	// snapshotVersionV1 is the oldest decodable format: identical up to
	// the directions, no profile section.
	snapshotVersionV1 = 1
)

const (
	snapFlagComplete  = 1 << 0
	snapFlagGrid      = 1 << 1
	snapFlagPublished = 1 << 2
)

// ErrUnknownSnapshotVersion marks a TAXISNPB blob whose version this
// build does not speak. The cluster treats it as a deployment-skew
// signal, never as mergeable data.
var ErrUnknownSnapshotVersion = errors.New("sink: unknown snapshot format version")

// ErrBadSnapshot marks a snapshot blob that fails structural
// validation: wrong magic, truncation, oversized lengths, or a corrupt
// embedded histogram.
var ErrBadSnapshot = errors.New("sink: bad snapshot encoding")

// AppendSnapshot appends s's TAXISNPB encoding to dst. The encoding is
// deterministic: cells in CellID order, directions in Directions
// order, so equal snapshots encode to equal bytes.
func AppendSnapshot(dst []byte, s *Snapshot) []byte {
	dst = append(dst, snapshotMagic[:]...)
	dst = append(dst, snapshotVersion)
	dst = binary.AppendUvarint(dst, s.Epoch)

	var flags byte
	if s.Complete {
		flags |= snapFlagComplete
	}
	if s.Grid != nil {
		flags |= snapFlagGrid
	}
	if !s.PublishedAt.IsZero() {
		flags |= snapFlagPublished
	}
	dst = append(dst, flags)
	dst = binary.AppendUvarint(dst, uint64(s.CarsIngested))
	dst = binary.AppendUvarint(dst, uint64(s.CarsFailed))
	dst = binary.AppendUvarint(dst, uint64(s.Points))
	if flags&snapFlagPublished != 0 {
		dst = binary.AppendVarint(dst, s.PublishedAt.UnixNano())
	}
	if s.Grid != nil {
		for _, f := range []float64{s.Grid.Area.MinX, s.Grid.Area.MinY, s.Grid.Area.MaxX, s.Grid.Area.MaxY, s.Grid.CellM} {
			dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(f))
		}
	}

	dst = binary.AppendUvarint(dst, uint64(len(s.Gates)))
	for _, g := range s.Gates {
		dst = appendString(dst, g)
	}

	cells := s.CellIDs()
	dst = binary.AppendUvarint(dst, uint64(len(cells)))
	for _, id := range cells {
		c := s.Cells[id]
		dst = binary.AppendVarint(dst, int64(id.I))
		dst = binary.AppendVarint(dst, int64(id.J))
		dst = binary.AppendUvarint(dst, uint64(c.N))
		for _, f := range []float64{c.MeanKmh, c.VarKmh, c.MinKmh, c.MaxKmh} {
			dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(f))
		}
	}

	dirs := s.Directions()
	dst = binary.AppendUvarint(dst, uint64(len(dirs)))
	for _, dir := range dirs {
		od := s.OD[dir]
		dst = appendString(dst, od.From)
		dst = appendString(dst, od.To)
		dst = binary.AppendUvarint(dst, uint64(od.Trips))
		dst = od.TravelTimeS.AppendBinary(dst)
		for _, m := range []MetricStats{od.DistKm, od.FuelMl, od.LowSpeedPct, od.NormalSpeedPct} {
			dst = binary.AppendUvarint(dst, uint64(m.N))
			for _, f := range []float64{m.Mean, m.Min, m.Max} {
				dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(f))
			}
		}
		for _, a := range []int{od.Attrs.TrafficLights, od.Attrs.BusStops, od.Attrs.PedestrianCrossings, od.Attrs.Junctions} {
			dst = binary.AppendUvarint(dst, uint64(a))
		}
	}

	keys := s.EdgeProfileKeys()
	dst = binary.AppendUvarint(dst, uint64(len(keys)))
	for _, key := range keys {
		ps := s.EdgeProfiles[key]
		dst = binary.AppendVarint(dst, int64(key.Edge))
		dst = binary.AppendUvarint(dst, uint64(key.Hour))
		dst = binary.AppendUvarint(dst, uint64(ps.N))
		for _, f := range []float64{ps.MeanSPerKm, ps.VarSPerKm, ps.MinSPerKm, ps.MaxSPerKm} {
			dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(f))
		}
	}
	return dst
}

// EncodeSnapshot returns s's TAXISNPB encoding.
func EncodeSnapshot(s *Snapshot) []byte { return AppendSnapshot(nil, s) }

// WriteSnapshot writes s's TAXISNPB encoding to w.
func WriteSnapshot(w io.Writer, s *Snapshot) error {
	_, err := w.Write(EncodeSnapshot(s))
	return err
}

// ReadSnapshot decodes one snapshot from r (reading to EOF).
func ReadSnapshot(r io.Reader) (*Snapshot, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("sink: read snapshot: %w", err)
	}
	return DecodeSnapshot(data)
}

func appendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

// snapDecoder walks a TAXISNPB body with bounds-checked reads.
type snapDecoder struct {
	data []byte
	off  int
	err  error
}

func (d *snapDecoder) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("%w: %s (at byte %d)", ErrBadSnapshot, fmt.Sprintf(format, args...), d.off)
	}
}

func (d *snapDecoder) uvarint(what string) uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.data[d.off:])
	if n <= 0 {
		d.fail("truncated %s", what)
		return 0
	}
	d.off += n
	return v
}

func (d *snapDecoder) varint(what string) int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.data[d.off:])
	if n <= 0 {
		d.fail("truncated %s", what)
		return 0
	}
	d.off += n
	return v
}

// count reads a collection length and validates it against the bytes
// actually remaining (each element needs at least minBytes), so a
// hostile length cannot drive a huge allocation.
func (d *snapDecoder) count(what string, minBytes int) int {
	v := d.uvarint(what)
	if d.err != nil {
		return 0
	}
	if v > uint64(len(d.data)-d.off)/uint64(minBytes)+1 {
		d.fail("%s count %d exceeds remaining input", what, v)
		return 0
	}
	return int(v)
}

func (d *snapDecoder) f64(what string) float64 {
	if d.err != nil {
		return 0
	}
	if d.off+8 > len(d.data) {
		d.fail("truncated %s", what)
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(d.data[d.off:]))
	d.off += 8
	return v
}

func (d *snapDecoder) byte(what string) byte {
	if d.err != nil {
		return 0
	}
	if d.off >= len(d.data) {
		d.fail("truncated %s", what)
		return 0
	}
	b := d.data[d.off]
	d.off++
	return b
}

func (d *snapDecoder) string(what string) string {
	n := d.uvarint(what + " length")
	if d.err != nil {
		return ""
	}
	if n > uint64(len(d.data)-d.off) {
		d.fail("%s length %d exceeds remaining input", what, n)
		return ""
	}
	s := string(d.data[d.off : d.off+int(n)])
	d.off += int(n)
	return s
}

func (d *snapDecoder) metric(what string) MetricStats {
	m := MetricStats{N: int(d.uvarint(what + " n"))}
	m.Mean = d.f64(what + " mean")
	m.Min = d.f64(what + " min")
	m.Max = d.f64(what + " max")
	return m
}

func (d *snapDecoder) histogram(what string) *obs.FrozenHistogram {
	if d.err != nil {
		return nil
	}
	h, n, err := obs.DecodeFrozenHistogram(d.data[d.off:])
	if err != nil {
		d.fail("%s: %v", what, err)
		return nil
	}
	d.off += n
	return h
}

// DecodeSnapshot decodes a TAXISNPB blob. Unknown versions return
// ErrUnknownSnapshotVersion; any structural violation returns an error
// wrapping ErrBadSnapshot. Trailing bytes are an error.
func DecodeSnapshot(data []byte) (*Snapshot, error) {
	if len(data) < len(snapshotMagic)+1 {
		return nil, fmt.Errorf("%w: %d bytes is too short for the header", ErrBadSnapshot, len(data))
	}
	if [8]byte(data[:8]) != snapshotMagic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrBadSnapshot, data[:8])
	}
	version := data[8]
	if version < snapshotVersionV1 || version > snapshotVersion {
		return nil, fmt.Errorf("%w: got version %d, this build speaks %d..%d",
			ErrUnknownSnapshotVersion, version, snapshotVersionV1, snapshotVersion)
	}

	d := &snapDecoder{data: data, off: 9}
	s := &Snapshot{Epoch: d.uvarint("epoch")}
	flags := d.byte("flags")
	s.Complete = flags&snapFlagComplete != 0
	s.CarsIngested = int(d.uvarint("carsIngested"))
	s.CarsFailed = int(d.uvarint("carsFailed"))
	s.Points = int(d.uvarint("points"))
	if flags&snapFlagPublished != 0 {
		s.PublishedAt = time.Unix(0, d.varint("publishedAt"))
	}
	if flags&snapFlagGrid != 0 {
		area := geo.Rect{
			MinX: d.f64("grid minX"), MinY: d.f64("grid minY"),
			MaxX: d.f64("grid maxX"), MaxY: d.f64("grid maxY"),
		}
		cellM := d.f64("grid cellM")
		if d.err == nil {
			g, err := grid.New(area, cellM)
			if err != nil {
				d.fail("grid frame: %v", err)
			} else {
				s.Grid = g
			}
		}
	}

	if n := d.count("gates", 1); n > 0 {
		s.Gates = make([]string, 0, n)
		for i := 0; i < n && d.err == nil; i++ {
			s.Gates = append(s.Gates, d.string("gate name"))
		}
	}

	if n := d.count("cells", 3+4*8); n > 0 || d.err == nil {
		s.Cells = make(map[grid.CellID]CellStats, n)
		for i := 0; i < n && d.err == nil; i++ {
			id := grid.CellID{I: int(d.varint("cell i")), J: int(d.varint("cell j"))}
			c := CellStats{N: int(d.uvarint("cell n"))}
			c.MeanKmh = d.f64("cell mean")
			c.VarKmh = d.f64("cell var")
			c.MinKmh = d.f64("cell min")
			c.MaxKmh = d.f64("cell max")
			if d.err == nil {
				if _, dup := s.Cells[id]; dup {
					d.fail("duplicate cell %v", id)
					break
				}
				s.Cells[id] = c
			}
		}
	}

	if n := d.count("directions", 2+4+4*(1+3*8)+4); n > 0 || d.err == nil {
		s.OD = make(map[ODKey]ODStats, n)
		for i := 0; i < n && d.err == nil; i++ {
			od := ODStats{From: d.string("od from"), To: d.string("od to")}
			od.Trips = int(d.uvarint("od trips"))
			od.TravelTimeS = d.histogram("od travel-time histogram")
			od.DistKm = d.metric("od dist")
			od.FuelMl = d.metric("od fuel")
			od.LowSpeedPct = d.metric("od low-speed")
			od.NormalSpeedPct = d.metric("od normal-speed")
			od.Attrs = AttrTotals{
				TrafficLights:       int(d.uvarint("od traffic lights")),
				BusStops:            int(d.uvarint("od bus stops")),
				PedestrianCrossings: int(d.uvarint("od crossings")),
				Junctions:           int(d.uvarint("od junctions")),
			}
			if d.err == nil {
				key := ODKey{From: od.From, To: od.To}
				if _, dup := s.OD[key]; dup {
					d.fail("duplicate direction %v", key)
					break
				}
				s.OD[key] = od
			}
		}
	}

	if version >= 2 {
		if n := d.count("profiles", 3+4*8); n > 0 {
			s.EdgeProfiles = make(map[EdgeProfileKey]EdgeProfileStats, n)
			for i := 0; i < n && d.err == nil; i++ {
				key := EdgeProfileKey{
					Edge: roadnet.EdgeID(d.varint("profile edge")),
					Hour: int(d.uvarint("profile hour")),
				}
				ps := EdgeProfileStats{N: int(d.uvarint("profile n"))}
				ps.MeanSPerKm = d.f64("profile mean")
				ps.VarSPerKm = d.f64("profile var")
				ps.MinSPerKm = d.f64("profile min")
				ps.MaxSPerKm = d.f64("profile max")
				if d.err == nil {
					if _, dup := s.EdgeProfiles[key]; dup {
						d.fail("duplicate profile %v", key)
						break
					}
					s.EdgeProfiles[key] = ps
				}
			}
		}
	}

	if d.err != nil {
		return nil, d.err
	}
	if d.off != len(data) {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrBadSnapshot, len(data)-d.off)
	}
	return s, nil
}
