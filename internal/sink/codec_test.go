package sink

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strconv"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/grid"
)

// codecFixture builds a realistic sealed snapshot through the real
// sink: several cars, two directions, failures, a full grid frame and
// gate registration. seed offsets the car ids so distinct fixtures
// cover different shards.
func codecFixture(t *testing.T, seed int) *Snapshot {
	t.Helper()
	g, err := grid.New(geo.R(0, 0, 2000, 2000), 200)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{Grid: g, Shards: 4, PublishEvery: 1, Gates: []string{"T", "S"}})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		car := seed*100 + i + 1
		dir := "T-S"
		if i%2 == 1 {
			dir = "S-T"
		}
		s.AbsorbEvent(core.CarEvent{Car: car, Result: synthCar(car, dir, 20+float64(i), 35, 50+float64(seed))})
	}
	s.AbsorbEvent(core.CarEvent{Car: seed*100 + 99, Err: &core.CarError{Car: seed*100 + 99}})
	snap := s.Seal()
	// A wall-clock PublishedAt carries a monotonic reading that cannot
	// survive any wire format; pin a plain wall time so DeepEqual is
	// meaningful.
	snap.PublishedAt = time.Unix(1646130000, 123456789)
	return snap
}

func TestSnapshotCodecRoundTrip(t *testing.T) {
	fix := codecFixture(t, 1)
	cases := map[string]*Snapshot{
		"sealed fleet": fix,
		"empty":        {},
		"no grid, no od": {
			Epoch: 7, CarsIngested: 3, CarsFailed: 1, Points: 12,
			PublishedAt: time.Unix(1646130000, 0),
		},
	}
	for name, want := range cases {
		t.Run(name, func(t *testing.T) {
			blob := EncodeSnapshot(want)
			got, err := DecodeSnapshot(blob)
			if err != nil {
				t.Fatalf("decode: %v", err)
			}
			normalize := func(s *Snapshot) *Snapshot {
				c := *s
				if len(c.Cells) == 0 {
					c.Cells = nil
				}
				if len(c.OD) == 0 {
					c.OD = nil
				}
				return &c
			}
			if !reflect.DeepEqual(normalize(got), normalize(want)) {
				t.Fatalf("round-trip mismatch:\n got %+v\nwant %+v", got, want)
			}
		})
	}
}

func TestSnapshotCodecStreamRoundTrip(t *testing.T) {
	want := codecFixture(t, 2)
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, want); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Epoch != want.Epoch || got.Points != want.Points || len(got.OD) != len(want.OD) {
		t.Fatalf("stream round-trip mismatch: %+v vs %+v", got, want)
	}
}

func TestSnapshotCodecDeterministic(t *testing.T) {
	fix := codecFixture(t, 3)
	if !bytes.Equal(EncodeSnapshot(fix), EncodeSnapshot(fix)) {
		t.Fatal("encoding must be deterministic")
	}
}

func TestSnapshotCodecRejects(t *testing.T) {
	good := EncodeSnapshot(codecFixture(t, 4))

	t.Run("bad magic", func(t *testing.T) {
		bad := append([]byte(nil), good...)
		bad[0] = 'X'
		if _, err := DecodeSnapshot(bad); !errors.Is(err, ErrBadSnapshot) {
			t.Fatalf("want ErrBadSnapshot, got %v", err)
		}
	})
	t.Run("unknown version", func(t *testing.T) {
		bad := append([]byte(nil), good...)
		bad[8] = snapshotVersion + 1
		_, err := DecodeSnapshot(bad)
		if !errors.Is(err, ErrUnknownSnapshotVersion) {
			t.Fatalf("want ErrUnknownSnapshotVersion, got %v", err)
		}
		if errors.Is(err, ErrBadSnapshot) {
			t.Fatal("version skew must stay distinguishable from corruption")
		}
	})
	t.Run("every truncation rejected", func(t *testing.T) {
		for cut := 0; cut < len(good); cut++ {
			if _, err := DecodeSnapshot(good[:cut]); !errors.Is(err, ErrBadSnapshot) {
				t.Fatalf("cut=%d: want ErrBadSnapshot, got %v", cut, err)
			}
		}
	})
	t.Run("trailing bytes", func(t *testing.T) {
		if _, err := DecodeSnapshot(append(append([]byte(nil), good...), 0)); !errors.Is(err, ErrBadSnapshot) {
			t.Fatal("trailing bytes must be rejected")
		}
	})
	t.Run("hostile collection length", func(t *testing.T) {
		// Minimal header claiming 2^60 gates: must reject on the bounds
		// check, not attempt the allocation.
		blob := append([]byte(nil), snapshotMagic[:]...)
		blob = append(blob, snapshotVersion, 0 /* epoch */, 0 /* flags */, 0, 0, 0)
		blob = append(blob, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x10) // uvarint 2^60
		if _, err := DecodeSnapshot(blob); !errors.Is(err, ErrBadSnapshot) {
			t.Fatalf("want ErrBadSnapshot, got %v", err)
		}
	})
}

// TestSeedFuzzCorpus regenerates the committed seed corpus for
// FuzzDecodeSnapshot when SEED_FUZZ_CORPUS=1 is set; otherwise it only
// verifies the corpus directory is present (the committed files replay
// on every plain `go test` run).
func TestSeedFuzzCorpus(t *testing.T) {
	dir := filepath.Join("testdata", "fuzz", "FuzzDecodeSnapshot")
	if os.Getenv("SEED_FUZZ_CORPUS") == "" {
		if _, err := os.Stat(dir); err != nil {
			t.Fatalf("committed fuzz corpus missing: %v (regenerate with SEED_FUZZ_CORPUS=1 go test ./internal/sink/ -run TestSeedFuzzCorpus)", err)
		}
		return
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	seeds := [][]byte{
		EncodeSnapshot(&Snapshot{}),
		EncodeSnapshot(codecFixture(t, 5)),
		EncodeSnapshot(profileFixture(6)),
	}
	// A version-skewed, a truncated, and a previous-version variant keep
	// the reject and compatibility paths in the corpus too.
	skew := append([]byte(nil), seeds[1]...)
	skew[8] = 9
	seeds = append(seeds, skew, seeds[1][:len(seeds[1])/2], asV1(t, seeds[1]))
	for i, data := range seeds {
		body := "go test fuzz v1\n[]byte(" + strconv.Quote(string(data)) + ")\n"
		name := filepath.Join(dir, fmt.Sprintf("seed-%02d", i))
		if err := os.WriteFile(name, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}
