package sink

import (
	"errors"
	"math"
	"reflect"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/mapmatch"
	"repro/internal/roadnet"
	"repro/internal/stats"
)

// matchedCar builds a synthCar whose transition carries a match: every
// span point assigned to the given edge, paced at paceSPerKm, starting
// at the given hour of day.
func matchedCar(car int, edge roadnet.EdgeID, hour int, paceSPerKm float64, points int) core.CarResult {
	cr := synthCar(car, "T-S", make([]float64, points)...)
	rec := cr.Transitions[0]
	base := time.Date(2022, 3, 1, hour, 0, 0, 0, time.UTC)
	match := &mapmatch.Result{}
	const stepM = 100.0
	stepS := paceSPerKm * stepM / 1000
	for i := range rec.Transition.Seg.Points {
		rec.Transition.Seg.Points[i].Time = base.Add(time.Duration(float64(i) * stepS * float64(time.Second)))
		match.Points = append(match.Points, mapmatch.MatchedPoint{
			Index: i, Edge: edge,
			Proj: geo.ProjectResult{Along: float64(i) * stepM},
		})
	}
	rec.Match = match
	return cr
}

func TestSinkLearnsEdgeProfiles(t *testing.T) {
	s := testSink(t, 4, 1)
	s.AbsorbEvent(core.CarEvent{Car: 1, Result: matchedCar(1, 7, 8, 120, 4)})
	s.AbsorbEvent(core.CarEvent{Car: 2, Result: matchedCar(2, 7, 8, 180, 4)})
	s.AbsorbEvent(core.CarEvent{Car: 3, Result: matchedCar(3, 9, 17, 90, 4)})
	// An unmatched car contributes cells and OD but no profile.
	s.AbsorbEvent(core.CarEvent{Car: 4, Result: synthCar(4, "T-S", 30, 40)})
	snap := s.Seal()

	if len(snap.EdgeProfiles) != 2 {
		t.Fatalf("profiles = %+v, want buckets (7,8) and (9,17)", snap.EdgeProfiles)
	}
	rush := snap.EdgeProfiles[EdgeProfileKey{Edge: 7, Hour: 8}]
	if rush.N != 2 || math.Abs(rush.MeanSPerKm-150) > 1e-9 {
		t.Fatalf("bucket (7,8) = %+v, want n=2 mean=150", rush)
	}
	if rush.MinSPerKm >= rush.MaxSPerKm {
		t.Fatalf("bucket (7,8) extrema not ordered: %+v", rush)
	}
	evening := snap.EdgeProfiles[EdgeProfileKey{Edge: 9, Hour: 17}]
	if evening.N != 1 || math.Abs(evening.MeanSPerKm-90) > 1e-9 || evening.VarSPerKm != 0 {
		t.Fatalf("bucket (9,17) = %+v, want n=1 mean=90 var=0", evening)
	}
}

// profileFixture is a snapshot carrying only edge profiles — the
// codec's new v2 section in isolation.
func profileFixture(epoch uint64) *Snapshot {
	return &Snapshot{
		Epoch: epoch, Points: 4,
		EdgeProfiles: map[EdgeProfileKey]EdgeProfileStats{
			{Edge: 3, Hour: 8}:  {N: 4, MeanSPerKm: 140, VarSPerKm: 25, MinSPerKm: 130, MaxSPerKm: 150},
			{Edge: 3, Hour: 17}: {N: 2, MeanSPerKm: 200, VarSPerKm: 50, MinSPerKm: 195, MaxSPerKm: 205},
			{Edge: 11, Hour: 8}: {N: 1, MeanSPerKm: 90, MinSPerKm: 90, MaxSPerKm: 90},
		},
	}
}

func TestSnapshotCodecProfileRoundTrip(t *testing.T) {
	// Both a profiles-only snapshot and a full sealed fleet snapshot
	// that actually learned profiles must survive the wire byte-exactly.
	s := testSink(t, 4, 1)
	s.AbsorbEvent(core.CarEvent{Car: 1, Result: matchedCar(1, 7, 8, 120, 4)})
	s.AbsorbEvent(core.CarEvent{Car: 2, Result: matchedCar(2, 9, 9, 150, 4)})
	sealed := s.Seal()
	sealed.PublishedAt = time.Unix(1646130000, 123456789)

	for name, want := range map[string]*Snapshot{
		"profiles only": profileFixture(5),
		"sealed fleet":  sealed,
	} {
		t.Run(name, func(t *testing.T) {
			got, err := DecodeSnapshot(EncodeSnapshot(want))
			if err != nil {
				t.Fatalf("decode: %v", err)
			}
			if !reflect.DeepEqual(got.EdgeProfiles, want.EdgeProfiles) {
				t.Fatalf("profiles round-trip mismatch:\n got %+v\nwant %+v", got.EdgeProfiles, want.EdgeProfiles)
			}
		})
	}
}

// asV1 rewrites a v2 blob of a profile-less snapshot into its exact v1
// encoding: same bytes minus the trailing nProfiles=0 uvarint, with the
// version byte set back to 1.
func asV1(t *testing.T, blob []byte) []byte {
	t.Helper()
	if blob[len(blob)-1] != 0 {
		t.Fatal("fixture must encode zero profiles to be rewritable as v1")
	}
	v1 := append([]byte(nil), blob[:len(blob)-1]...)
	v1[8] = snapshotVersionV1
	return v1
}

func TestSnapshotCodecDecodesV1(t *testing.T) {
	want := codecFixture(t, 6)
	v1 := asV1(t, EncodeSnapshot(want))

	got, err := DecodeSnapshot(v1)
	if err != nil {
		t.Fatalf("v1 blob must stay decodable: %v", err)
	}
	if got.EdgeProfiles != nil {
		t.Fatalf("v1 blob decoded with profiles: %+v", got.EdgeProfiles)
	}
	if got.Epoch != want.Epoch || got.Points != want.Points || !reflect.DeepEqual(got.OD, want.OD) {
		t.Fatalf("v1 decode drift:\n got %+v\nwant %+v", got, want)
	}
	// Re-encoding upgrades to the current version and stays decodable.
	blob := EncodeSnapshot(got)
	if blob[8] != snapshotVersion {
		t.Fatalf("re-encode version = %d, want %d", blob[8], snapshotVersion)
	}
	if _, err := DecodeSnapshot(blob); err != nil {
		t.Fatalf("upgraded blob must decode: %v", err)
	}

	t.Run("v1 truncations rejected", func(t *testing.T) {
		for cut := 0; cut < len(v1); cut++ {
			if _, err := DecodeSnapshot(v1[:cut]); !errors.Is(err, ErrBadSnapshot) {
				t.Fatalf("cut=%d: want ErrBadSnapshot, got %v", cut, err)
			}
		}
	})
	t.Run("v1 with trailing profile section rejected", func(t *testing.T) {
		// The old format has no profile section: leftover bytes where v2
		// would put one must fail as trailing garbage, not silently parse.
		if _, err := DecodeSnapshot(append(append([]byte(nil), v1...), 0)); !errors.Is(err, ErrBadSnapshot) {
			t.Fatalf("want ErrBadSnapshot, got %v", err)
		}
	})
}

func TestMergeSnapshotsProfiles(t *testing.T) {
	a := &Snapshot{Epoch: 1, EdgeProfiles: map[EdgeProfileKey]EdgeProfileStats{
		{Edge: 3, Hour: 8}: newEdgeProfileStatsOf(100, 120, 140),
		{Edge: 5, Hour: 8}: newEdgeProfileStatsOf(200),
	}}
	b := &Snapshot{Epoch: 2, EdgeProfiles: map[EdgeProfileKey]EdgeProfileStats{
		{Edge: 3, Hour: 8}: newEdgeProfileStatsOf(160, 180),
		{Edge: 7, Hour: 9}: newEdgeProfileStatsOf(90, 95),
	}}
	m, err := MergeSnapshots(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.EdgeProfiles) != 3 {
		t.Fatalf("merged profiles = %+v, want 3 buckets", m.EdgeProfiles)
	}
	// The overlapping bucket must equal one accumulator over the union.
	want := newEdgeProfileStatsOf(100, 120, 140, 160, 180)
	got := m.EdgeProfiles[EdgeProfileKey{Edge: 3, Hour: 8}]
	if got.N != want.N || math.Abs(got.MeanSPerKm-want.MeanSPerKm) > 1e-9 ||
		math.Abs(got.VarSPerKm-want.VarSPerKm) > 1e-6 ||
		got.MinSPerKm != want.MinSPerKm || got.MaxSPerKm != want.MaxSPerKm {
		t.Fatalf("merged bucket = %+v, want %+v", got, want)
	}
	// Disjoint buckets pass through untouched.
	if m.EdgeProfiles[EdgeProfileKey{Edge: 5, Hour: 8}] != a.EdgeProfiles[EdgeProfileKey{Edge: 5, Hour: 8}] {
		t.Fatal("disjoint bucket from a mutated by merge")
	}
	if m.EdgeProfiles[EdgeProfileKey{Edge: 7, Hour: 9}] != b.EdgeProfiles[EdgeProfileKey{Edge: 7, Hour: 9}] {
		t.Fatal("disjoint bucket from b mutated by merge")
	}
}

func newEdgeProfileStatsOf(xs ...float64) EdgeProfileStats {
	var w stats.Welford
	for _, x := range xs {
		w.Add(x)
	}
	return newEdgeProfileStats(&w)
}
