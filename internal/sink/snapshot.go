package sink

import (
	"math"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/grid"
	"repro/internal/obs"
	"repro/internal/roadnet"
	"repro/internal/stats"
)

// Snapshot is one immutable epoch of the aggregation. Readers obtain it
// with Sink.Snapshot and may hold it indefinitely; nothing in it is
// ever mutated after publish. Epoch 0 is the empty pre-run snapshot.
type Snapshot struct {
	// Epoch numbers publishes monotonically; it keys the HTTP layer's
	// ETags, so equal epochs imply byte-equal query answers.
	Epoch uint64
	// CarsIngested / CarsFailed count the cars folded in (successful)
	// and seen failing so far; Complete marks the sealed final epoch —
	// until then the statistics cover a partial fleet.
	CarsIngested int
	CarsFailed   int
	Complete     bool
	// Points is the number of in-area measured point speeds aggregated.
	Points      int
	PublishedAt time.Time

	// Grid is the shared analysis frame (immutable).
	Grid *grid.Grid
	// Cells holds per-cell speed statistics for every non-empty cell.
	Cells map[grid.CellID]CellStats
	// OD holds per-direction transition statistics, keyed by the
	// ordered gate pair itself — not its rendered "From-To" string, so
	// gate names containing '-' cannot collide.
	OD map[ODKey]ODStats
	// Gates lists the registered gate names (from Config.Gates, in
	// registration order) — the authoritative name set the query layer
	// validates OD lookups against. Empty when the sink was built
	// without gate registration; lookups then skip name validation.
	Gates []string
	// EdgeProfiles holds the learned per-edge travel-time profiles:
	// pace moments (seconds per kilometre) per (edge, hour-of-day)
	// bucket, the sufficient statistics the predictor routes over. Nil
	// when no matched route has yielded a pace observation yet.
	EdgeProfiles map[EdgeProfileKey]EdgeProfileStats
}

// ODKey is an ordered origin-destination gate pair — the snapshot's OD
// map key. Keying by the two names (not their concatenation) keeps
// directions distinct even when gate names contain the '-' separator.
type ODKey struct {
	From, To string
}

// String renders the key in the paper's direction notation ("T-S").
func (k ODKey) String() string { return k.From + "-" + k.To }

// CellStats is one grid cell's speed aggregate.
type CellStats struct {
	N       int     `json:"n"`
	MeanKmh float64 `json:"mean_kmh"`
	VarKmh  float64 `json:"var_kmh"`
	MinKmh  float64 `json:"min_kmh"`
	MaxKmh  float64 `json:"max_kmh"`
}

// MetricStats summarises one per-transition metric (distance, fuel,
// speed shares) over a direction's trips.
type MetricStats struct {
	N    int     `json:"n"`
	Mean float64 `json:"mean"`
	Min  float64 `json:"min"`
	Max  float64 `json:"max"`
}

// AttrTotals sums route attributes over a direction's matched routes
// (the Table 4 feature columns).
type AttrTotals struct {
	TrafficLights       int `json:"traffic_lights"`
	BusStops            int `json:"bus_stops"`
	PedestrianCrossings int `json:"pedestrian_crossings"`
	Junctions           int `json:"junctions"`
}

// ODStats is one direction's transition aggregate.
type ODStats struct {
	From  string
	To    string
	Trips int
	// TravelTimeS is the travel-time distribution in seconds; quantiles
	// stay queryable per epoch.
	TravelTimeS    *obs.FrozenHistogram
	DistKm         MetricStats
	FuelMl         MetricStats
	LowSpeedPct    MetricStats
	NormalSpeedPct MetricStats
	Attrs          AttrTotals
}

// EdgeProfileKey buckets pace observations by edge and UTC hour of
// day — the time-of-day profile granularity of the travel-time model.
type EdgeProfileKey struct {
	Edge roadnet.EdgeID
	Hour int
}

// EdgeProfileStats is one profile bucket's pace aggregate, carrying the
// full Welford sufficient statistics so buckets merge exactly across
// shards and cluster partials (like CellStats, var only when N >= 2).
type EdgeProfileStats struct {
	N          int     `json:"n"`
	MeanSPerKm float64 `json:"mean_s_per_km"`
	VarSPerKm  float64 `json:"var_s_per_km"`
	MinSPerKm  float64 `json:"min_s_per_km"`
	MaxSPerKm  float64 `json:"max_s_per_km"`
}

// EdgeProfileKeys returns the snapshot's profile buckets sorted (by
// edge, then hour) for deterministic iteration — encoding and the
// predictor's global-mean pass both depend on a stable order.
func (s *Snapshot) EdgeProfileKeys() []EdgeProfileKey {
	out := make([]EdgeProfileKey, 0, len(s.EdgeProfiles))
	for k := range s.EdgeProfiles {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Edge != out[j].Edge {
			return out[i].Edge < out[j].Edge
		}
		return out[i].Hour < out[j].Hour
	})
	return out
}

// newEdgeProfileStats freezes one profile bucket's accumulator.
func newEdgeProfileStats(w *stats.Welford) EdgeProfileStats {
	ps := EdgeProfileStats{N: w.N(), MeanSPerKm: w.Mean()}
	if ps.N >= 2 {
		ps.VarSPerKm = w.Variance()
	}
	if ps.N > 0 {
		ps.MinSPerKm, ps.MaxSPerKm = w.Min(), w.Max()
	}
	return ps
}

// Directions returns the snapshot's OD keys sorted (by origin, then
// destination), for stable iteration in API responses and tables.
func (s *Snapshot) Directions() []ODKey {
	out := make([]ODKey, 0, len(s.OD))
	for dir := range s.OD {
		out = append(out, dir)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].From != out[j].From {
			return out[i].From < out[j].From
		}
		return out[i].To < out[j].To
	})
	return out
}

// HasGate reports whether name is a registered gate. With no gate
// registration (empty Gates) every name passes — the caller then falls
// back to plain map-lookup semantics.
func (s *Snapshot) HasGate(name string) bool {
	if len(s.Gates) == 0 {
		return true
	}
	for _, g := range s.Gates {
		if g == name {
			return true
		}
	}
	return false
}

// CellIDs returns the snapshot's non-empty cells in ID order.
func (s *Snapshot) CellIDs() []grid.CellID {
	out := make([]grid.CellID, 0, len(s.Cells))
	for id := range s.Cells {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].I != out[j].I {
			return out[i].I < out[j].I
		}
		return out[i].J < out[j].J
	})
	return out
}

// newCellStats freezes one aggregated cell.
func newCellStats(c *grid.Cell) CellStats {
	cs := CellStats{N: c.Speed.N(), MeanKmh: c.Speed.Mean()}
	if cs.N >= 2 {
		cs.VarKmh = c.Speed.Variance()
	}
	cs.MinKmh, cs.MaxKmh = c.Speed.Min(), c.Speed.Max()
	return cs
}

// summarize freezes a Welford accumulator into plain values (zeros when
// empty, so JSON responses never carry NaN).
func summarize(w stats.Welford) MetricStats {
	m := MetricStats{N: w.N()}
	if m.N == 0 {
		return m
	}
	m.Mean, m.Min, m.Max = w.Mean(), w.Min(), w.Max()
	if math.IsNaN(m.Mean) {
		m.Mean = 0
	}
	return m
}

// GridForPipeline builds the analysis grid frame matching p's batch
// GridAnalysis (study area + configured cell size), so a sink fed from
// p's stream aggregates on exactly the frame the batch path uses.
func GridForPipeline(p *core.Pipeline) (*grid.Grid, error) {
	return grid.New(p.City.StudyArea, p.Config.GridCellM)
}
