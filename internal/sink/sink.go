// Package sink is the serving layer's ingest side: a mergeable,
// incrementally updated aggregation over the fleet stream. Where the
// batch pipeline computes grid-cell speed maps (Table 5), OD transition
// statistics (Tables 3-4) and travel-time distributions once at the end
// of a run, the sink folds each car in as it completes — consuming the
// runner's CarEvents — and periodically publishes immutable,
// epoch-numbered snapshots that the HTTP query API (internal/serve)
// reads without ever blocking ingest.
//
// Concurrency model:
//
//   - Ingest is sharded: each car lands entirely in one shard (car
//     number modulo shard count), guarded by that shard's mutex, so
//     per-car absorption from parallel runner workers contends only
//     within a shard and every shard always holds a whole number of
//     cars.
//   - Publish merges the shards (grid aggregators via Welford merge,
//     travel-time histograms via exact bucket-count merge) into a fresh
//     *Snapshot and swaps it in with one atomic pointer store.
//   - Readers call Snapshot() — a single atomic load. A reader holds one
//     immutable epoch forever; there is nothing to tear and nothing to
//     lock.
//
// The final sealed snapshot is value-identical to the batch Result
// aggregation over the same fleet: integer counts (cells, trips, points,
// histogram buckets) match exactly, and floating-point moments match up
// to accumulation-order rounding (see TestFinalSnapshotMatchesBatch).
package sink

import (
	"context"
	"fmt"
	"log/slog"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/check"
	"repro/internal/core"
	"repro/internal/grid"
	"repro/internal/obs"
	"repro/internal/stats"
)

// Config assembles one sink.
type Config struct {
	// Grid is the analysis grid frame cells are keyed on (required;
	// use the pipeline's study area and cell size to make the final
	// snapshot comparable to the batch aggregation).
	Grid *grid.Grid
	// Shards is the ingest shard count (default GOMAXPROCS). More
	// shards mean less lock contention between runner workers and
	// proportionally more merge work per publish.
	Shards int
	// PublishEvery is the auto-publish cadence in absorbed cars: after
	// every PublishEvery-th car a new epoch is published (default 1 —
	// every completed car becomes queryable immediately). Zero or
	// negative disables auto-publish; the owner then calls Publish or
	// Seal explicitly.
	PublishEvery int
	// Metrics instruments ingest and publish (sink_* metrics); nil
	// disables.
	Metrics *obs.Registry
	// Gates registers the gate names OD directions may reference; the
	// set is published on every snapshot (Snapshot.Gates) so the query
	// layer can reject lookups naming unknown gates. Empty disables
	// gate validation.
	Gates []string
	// Check enables the correctness harness on the sink's own boundary:
	// every publish validates the snapshot transition (strictly
	// advancing epoch, non-shrinking non-negative counts) against the
	// previous one, counting violations on Metrics. With Check.Strict a
	// violation is additionally latched and reported by CheckErr.
	Check check.Config
	// Now is the publish timestamp source (test hook); nil selects
	// time.Now.
	Now func() time.Time
	// Log receives one structured line per publish (Debug) and per seal
	// (Info) — epoch, cars, cells, OD pairs. Nil disables.
	Log *slog.Logger
}

func (c Config) withDefaults() (Config, error) {
	if c.Grid == nil {
		return c, fmt.Errorf("sink: Config.Grid is required")
	}
	if c.Shards <= 0 {
		c.Shards = runtime.GOMAXPROCS(0)
	}
	if c.PublishEvery == 0 {
		c.PublishEvery = 1
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c, nil
}

// Sink accumulates fleet results and publishes epoch-swapped immutable
// snapshots. Construct with New; all methods are safe for concurrent
// use.
type Sink struct {
	cfg    Config
	shards []*shard
	// cur is the atomic snapshot pointer readers load; publishes are
	// serialised by pubMu and swap cur exactly once each.
	cur      atomic.Pointer[Snapshot]
	pubMu    sync.Mutex
	absorbed atomic.Uint64 // successful cars folded in, drives auto-publish
	sealed   atomic.Bool

	// checker validates snapshot transitions when Config.Check is on
	// (nil otherwise); checkErr latches the first strict violation.
	// Both are guarded by pubMu (the checker runs only inside publish).
	checker  *check.Validator
	checkErr error

	met sinkMetrics
}

// shard is one ingest lane. A car is absorbed entirely under its
// shard's lock, so any publish observes whole cars only.
type shard struct {
	mu     sync.Mutex
	cars   int
	failed int
	points int
	agg    *grid.Aggregator
	od     map[ODKey]*odAcc
	// profiles accumulates per-edge pace observations (seconds per km
	// by edge and hour bucket) from the shard's matched routes.
	profiles map[EdgeProfileKey]*stats.Welford
}

// odAcc accumulates one direction's transition statistics.
type odAcc struct {
	from, to string
	trips    int
	// travel is the travel-time distribution in seconds, on the obs
	// log-linear bucket layout (merges exactly across shards).
	travel *obs.Histogram
	// Per-transition metric moments (Table 4 rows).
	distKm, fuelMl, lowPct, normalPct stats.Welford
	// Route attribute totals along the matched routes.
	lights, busStops, pedestrian, junctions int
}

type sinkMetrics struct {
	carsAbsorbed *obs.Counter
	carsFailed   *obs.Counter
	publishes    *obs.Counter
	absorbTime   *obs.Histogram
	publishTime  *obs.Histogram
	epoch        *obs.Gauge
	cells        *obs.Gauge
	odPairs      *obs.Gauge
	profiles     *obs.Gauge
}

// New builds a sink and publishes the empty epoch-0 snapshot, so
// readers attached before the first car completes already see a
// consistent (if empty) world.
func New(cfg Config) (*Sink, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	s := &Sink{
		cfg:     cfg,
		shards:  make([]*shard, cfg.Shards),
		checker: check.New(cfg.Check, cfg.Gates, nil, cfg.Metrics),
	}
	for i := range s.shards {
		s.shards[i] = &shard{
			agg:      grid.NewAggregator(cfg.Grid),
			od:       map[ODKey]*odAcc{},
			profiles: map[EdgeProfileKey]*stats.Welford{},
		}
	}
	reg := cfg.Metrics
	s.met = sinkMetrics{
		carsAbsorbed: reg.Counter("sink_cars_absorbed"),
		carsFailed:   reg.Counter("sink_cars_failed"),
		publishes:    reg.Counter("sink_publishes"),
		absorbTime:   reg.Histogram("sink_absorb_seconds"),
		publishTime:  reg.Histogram("sink_publish_seconds"),
		epoch:        reg.Gauge("sink_epoch"),
		cells:        reg.Gauge("sink_cells_nonempty"),
		odPairs:      reg.Gauge("sink_od_pairs"),
		profiles:     reg.Gauge("sink_edge_profiles"),
	}
	s.cur.Store(&Snapshot{
		Grid:        cfg.Grid,
		PublishedAt: cfg.Now(),
		Cells:       map[grid.CellID]CellStats{},
		OD:          map[ODKey]ODStats{},
		Gates:       cfg.Gates,
	})
	return s, nil
}

// CheckErr returns the first strict-mode invariant violation a publish
// latched (nil while the sink's snapshot sequence has stayed valid, or
// when checking is off). The error is sticky: once a transition has
// violated the epoch/count monotonicity contract, every later epoch is
// suspect.
func (s *Sink) CheckErr() error {
	s.pubMu.Lock()
	defer s.pubMu.Unlock()
	return s.checkErr
}

// Snapshot returns the current immutable snapshot: one atomic load,
// never nil, never blocked by ingest. Every field of the returned value
// belongs to a single epoch.
func (s *Sink) Snapshot() *Snapshot { return s.cur.Load() }

// AbsorbEvent consumes one runner event — the function to tee onto
// Pipeline.Stream / pass to Pipeline.RunObserved. Failed cars are
// counted; successful cars are folded into the aggregation, and the
// auto-publish cadence may publish a new epoch.
func (s *Sink) AbsorbEvent(ev core.CarEvent) {
	if ev.Err != nil {
		sh := s.shardFor(ev.Car)
		sh.mu.Lock()
		sh.failed++
		sh.mu.Unlock()
		s.met.carsFailed.Inc()
		return
	}
	s.Absorb(&ev.Result)
}

// Absorb folds one completed car into the aggregation and applies the
// auto-publish cadence.
func (s *Sink) Absorb(cr *core.CarResult) {
	start := time.Now()
	sh := s.shardFor(cr.Car)
	sh.mu.Lock()
	sh.absorb(cr)
	sh.mu.Unlock()
	s.met.absorbTime.Observe(time.Since(start).Seconds())
	s.met.carsAbsorbed.Inc()
	if n := s.absorbed.Add(1); s.cfg.PublishEvery > 0 && n%uint64(s.cfg.PublishEvery) == 0 {
		s.Publish()
	}
}

// AbsorbResult folds a whole batch result in — the bridge for inputs
// that bypass the stream (e.g. trips reloaded from CSV).
func (s *Sink) AbsorbResult(res *core.Result) {
	for i := range res.Cars {
		s.Absorb(&res.Cars[i])
	}
}

// AbsorbTransitions folds newly completed transitions of one car into
// the aggregation without counting the car as ingested — the streaming
// ingest layer's partial-absorb path, called once per trip the
// watermark closes. The car's transitions may arrive across many calls
// (and interleaved with other cars); once no more will come, one
// CarComplete call finishes the car's accounting. The final sealed
// snapshot is then value-identical to absorbing the same transitions
// through Absorb in one piece.
//
// AbsorbTransitions never auto-publishes: watermark-driven owners
// publish explicitly after each flush round so snapshot epochs track
// watermark advances rather than trip counts.
func (s *Sink) AbsorbTransitions(car int, recs []*core.TransitionRecord) {
	if len(recs) == 0 {
		return
	}
	start := time.Now()
	sh := s.shardFor(car)
	sh.mu.Lock()
	sh.absorbTransitions(recs)
	sh.mu.Unlock()
	s.met.absorbTime.Observe(time.Since(start).Seconds())
}

// CarComplete marks one car's stream of transitions finished, counting
// it toward CarsIngested and applying the auto-publish cadence. Call
// exactly once per car, after its last AbsorbTransitions.
func (s *Sink) CarComplete(car int) {
	sh := s.shardFor(car)
	sh.mu.Lock()
	sh.cars++
	sh.mu.Unlock()
	s.met.carsAbsorbed.Inc()
	if n := s.absorbed.Add(1); s.cfg.PublishEvery > 0 && n%uint64(s.cfg.PublishEvery) == 0 {
		s.Publish()
	}
}

func (s *Sink) shardFor(car int) *shard {
	if car < 0 {
		car = -car
	}
	return s.shards[car%len(s.shards)]
}

// absorb folds one car in; the caller holds the shard lock.
func (sh *shard) absorb(cr *core.CarResult) {
	sh.cars++
	sh.absorbTransitions(cr.Transitions)
}

// absorbTransitions folds transition records into the shard's grid and
// OD accumulators; the caller holds the shard lock.
func (sh *shard) absorbTransitions(recs []*core.TransitionRecord) {
	for _, rec := range recs {
		for _, sp := range core.TransitionSpeedPoints(rec) {
			if sh.agg.Add(sp.Pos, sp.SpeedKmh) {
				sh.points++
			}
		}
		key := ODKey{From: rec.Transition.From, To: rec.Transition.To}
		od := sh.od[key]
		if od == nil {
			od = &odAcc{from: key.From, to: key.To, travel: &obs.Histogram{}}
			sh.od[key] = od
		}
		od.trips++
		od.travel.Observe(rec.RouteTimeH * 3600)
		od.distKm.Add(rec.RouteDistKm)
		od.fuelMl.Add(rec.FuelMl)
		od.lowPct.Add(rec.LowSpeedPct)
		od.normalPct.Add(rec.NormalSpeedPct)
		od.lights += rec.Attrs.TrafficLights
		od.busStops += rec.Attrs.BusStops
		od.pedestrian += rec.Attrs.PedestrianCrossings
		od.junctions += rec.Attrs.Junctions
		for _, ep := range core.TransitionEdgePaces(rec) {
			key := EdgeProfileKey{Edge: ep.Edge, Hour: ep.Hour}
			w := sh.profiles[key]
			if w == nil {
				w = &stats.Welford{}
				sh.profiles[key] = w
			}
			w.Add(ep.SecPerKm)
		}
	}
}

// Publish merges the shards into a fresh immutable snapshot, bumps the
// epoch and swaps it in. Publishes are serialised; readers are never
// blocked (they keep whatever epoch they already loaded). Returns the
// published snapshot.
func (s *Sink) Publish() *Snapshot { return s.publish(false) }

// Seal publishes the final snapshot with Complete set — the run is
// over, the aggregation will not change again. Further absorbs are
// still folded in defensively but a sealed sink is meant to be
// read-only.
func (s *Sink) Seal() *Snapshot {
	s.sealed.Store(true)
	return s.publish(true)
}

func (s *Sink) publish(complete bool) *Snapshot {
	start := time.Now()
	s.pubMu.Lock()
	defer s.pubMu.Unlock()

	snap := &Snapshot{
		Grid:     s.cfg.Grid,
		Complete: complete || s.sealed.Load(),
		Cells:    map[grid.CellID]CellStats{},
		OD:       map[ODKey]ODStats{},
		Gates:    s.cfg.Gates,
	}
	merged := grid.NewAggregator(s.cfg.Grid)
	type odMerge struct {
		acc    odAcc
		travel *obs.Histogram
	}
	ods := map[ODKey]*odMerge{}
	profiles := map[EdgeProfileKey]*stats.Welford{}
	// Merge shard-by-shard in index order: each shard is locked only
	// while it is copied, so ingest into other shards proceeds in
	// parallel with the merge.
	for _, sh := range s.shards {
		sh.mu.Lock()
		snap.CarsIngested += sh.cars
		snap.CarsFailed += sh.failed
		snap.Points += sh.points
		merged.Merge(sh.agg)
		for dir, od := range sh.od {
			m := ods[dir]
			if m == nil {
				m = &odMerge{acc: odAcc{from: od.from, to: od.to}, travel: &obs.Histogram{}}
				ods[dir] = m
			}
			m.acc.trips += od.trips
			m.travel.Merge(od.travel)
			m.acc.distKm.Merge(od.distKm)
			m.acc.fuelMl.Merge(od.fuelMl)
			m.acc.lowPct.Merge(od.lowPct)
			m.acc.normalPct.Merge(od.normalPct)
			m.acc.lights += od.lights
			m.acc.busStops += od.busStops
			m.acc.pedestrian += od.pedestrian
			m.acc.junctions += od.junctions
		}
		for key, w := range sh.profiles {
			m := profiles[key]
			if m == nil {
				m = &stats.Welford{}
				profiles[key] = m
			}
			m.Merge(*w)
		}
		sh.mu.Unlock()
	}
	for _, c := range merged.Cells() {
		snap.Cells[c.ID] = newCellStats(c)
	}
	if len(profiles) > 0 {
		snap.EdgeProfiles = make(map[EdgeProfileKey]EdgeProfileStats, len(profiles))
		for key, w := range profiles {
			snap.EdgeProfiles[key] = newEdgeProfileStats(w)
		}
	}
	for dir, m := range ods {
		snap.OD[dir] = ODStats{
			From:           m.acc.from,
			To:             m.acc.to,
			Trips:          m.acc.trips,
			TravelTimeS:    m.travel.Freeze(),
			DistKm:         summarize(m.acc.distKm),
			FuelMl:         summarize(m.acc.fuelMl),
			LowSpeedPct:    summarize(m.acc.lowPct),
			NormalSpeedPct: summarize(m.acc.normalPct),
			Attrs: AttrTotals{
				TrafficLights:       m.acc.lights,
				BusStops:            m.acc.busStops,
				PedestrianCrossings: m.acc.pedestrian,
				Junctions:           m.acc.junctions,
			},
		}
	}
	prev := s.cur.Load()
	snap.Epoch = prev.Epoch + 1
	snap.PublishedAt = s.cfg.Now()
	if err := s.checker.SnapshotTransition(
		check.SnapshotMeta{Epoch: prev.Epoch, CarsIngested: prev.CarsIngested, CarsFailed: prev.CarsFailed, Points: prev.Points},
		check.SnapshotMeta{Epoch: snap.Epoch, CarsIngested: snap.CarsIngested, CarsFailed: snap.CarsFailed, Points: snap.Points},
	); err != nil && s.checkErr == nil {
		s.checkErr = err
	}
	s.cur.Store(snap)

	s.met.publishes.Inc()
	s.met.publishTime.Observe(time.Since(start).Seconds())
	s.met.epoch.Set(int64(snap.Epoch))
	s.met.cells.Set(int64(len(snap.Cells)))
	s.met.odPairs.Set(int64(len(snap.OD)))
	s.met.profiles.Set(int64(len(snap.EdgeProfiles)))
	if log := s.cfg.Log; log != nil {
		msg, level := "snapshot published", slog.LevelDebug
		if snap.Complete {
			msg, level = "sink sealed", slog.LevelInfo
		}
		log.Log(context.Background(), level, msg,
			slog.Uint64("epoch", snap.Epoch),
			slog.Int("cars", snap.CarsIngested),
			slog.Int("failed", snap.CarsFailed),
			slog.Int("points", snap.Points),
			slog.Int("cells", len(snap.Cells)),
			slog.Int("od_pairs", len(snap.OD)),
			slog.Bool("complete", snap.Complete))
	}
	return snap
}
