package sink

import (
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/grid"
)

// benchSink builds a sink over the standard bench grid with
// auto-publish disabled, so absorb and publish cost are measured
// separately.
func benchSink(b *testing.B, shards int) *Sink {
	b.Helper()
	g, err := grid.New(geo.R(0, 0, 2000, 2000), 200)
	if err != nil {
		b.Fatal(err)
	}
	s, err := New(Config{Grid: g, Shards: shards, PublishEvery: -1})
	if err != nil {
		b.Fatal(err)
	}
	return s
}

// benchCars prebuilds a pool of car results (ids 0..n-1, rows spread
// across the grid) so the generators stay out of the timed loop.
func benchCars(n int) []*core.CarResult {
	out := make([]*core.CarResult, n)
	for i := range out {
		dir := "T-S"
		if i%2 == 1 {
			dir = "S-T"
		}
		cr := synthCar(i%19, dir, 20, 35, 50, 45, 30, 25, 40, 55)
		cr.Car = i
		out[i] = &cr
	}
	return out
}

// BenchmarkSinkAbsorb measures single-writer ingest-merge throughput:
// one 8-point transition per car folded into the shard aggregation.
func BenchmarkSinkAbsorb(b *testing.B) {
	s := benchSink(b, 4)
	pool := benchCars(256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Absorb(pool[i%len(pool)])
	}
}

// BenchmarkSinkAbsorbParallel measures contended ingest: GOMAXPROCS
// writers absorbing into a GOMAXPROCS-sharded sink.
func BenchmarkSinkAbsorbParallel(b *testing.B) {
	s := benchSink(b, 0)
	pool := benchCars(256)
	var next atomic.Uint64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			i := int(next.Add(1))
			s.Absorb(pool[i%len(pool)])
		}
	})
}

// BenchmarkSinkPublish measures the shard-merge + snapshot-build cost
// of one publish over a sink holding 512 absorbed cars.
func BenchmarkSinkPublish(b *testing.B) {
	s := benchSink(b, 4)
	for _, cr := range benchCars(512) {
		s.Absorb(cr)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Publish()
	}
}
