package sink

import (
	"errors"
	"fmt"

	"repro/internal/grid"
	"repro/internal/stats"
)

// ErrFrameMismatch marks an attempt to merge snapshots aggregated on
// different analysis frames (grid area / cell size) or different gate
// registrations: their cell indexes and OD names would refer to
// different physical things, so combining them would silently corrupt
// the statistics — the grid-level analogue of obs.ErrLayoutMismatch.
var ErrFrameMismatch = errors.New("sink: snapshot analysis frames differ")

// sameFrame reports whether two grids describe the same analysis frame.
func sameFrame(a, b *grid.Grid) bool {
	return a.Area == b.Area && a.CellM == b.CellM
}

// sameGates reports whether two gate registrations are identical
// (order included — gate order is registration order on every worker
// running the shared config).
func sameGates(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// mergeCellStats folds two published cell aggregates with the same
// Welford parallel-merge algebra the sink's shards use in-process:
// the cell stats carry the full sufficient statistics (m2 = var·(n−1)),
// so the merged moments equal a single accumulator's over the union of
// observations up to float rounding.
func mergeCellStats(a, b CellStats) CellStats {
	w := welfordOfCell(a)
	w.Merge(welfordOfCell(b))
	out := CellStats{N: w.N(), MeanKmh: w.Mean()}
	if out.N >= 2 {
		out.VarKmh = w.Variance()
	}
	if out.N > 0 {
		out.MinKmh, out.MaxKmh = w.Min(), w.Max()
	}
	return out
}

func welfordOfCell(c CellStats) stats.Welford {
	if c.N <= 0 {
		return stats.Welford{}
	}
	return stats.WelfordFromState(stats.WelfordState{
		N: c.N, Mean: c.MeanKmh, M2: c.VarKmh * float64(c.N-1),
		Min: c.MinKmh, Max: c.MaxKmh,
	})
}

// mergeProfileStats folds two profile buckets of the same (edge, hour)
// key with the same sufficient-statistic algebra as mergeCellStats.
func mergeProfileStats(a, b EdgeProfileStats) EdgeProfileStats {
	w := welfordOfProfile(a)
	w.Merge(welfordOfProfile(b))
	out := EdgeProfileStats{N: w.N(), MeanSPerKm: w.Mean()}
	if out.N >= 2 {
		out.VarSPerKm = w.Variance()
	}
	if out.N > 0 {
		out.MinSPerKm, out.MaxSPerKm = w.Min(), w.Max()
	}
	return out
}

func welfordOfProfile(p EdgeProfileStats) stats.Welford {
	if p.N <= 0 {
		return stats.Welford{}
	}
	return stats.WelfordFromState(stats.WelfordState{
		N: p.N, Mean: p.MeanSPerKm, M2: p.VarSPerKm * float64(p.N-1),
		Min: p.MinSPerKm, Max: p.MaxSPerKm,
	})
}

// mergeMetricStats folds two metric summaries. MetricStats does not
// expose a variance, so M2 rides along as zero; count, mean and
// extrema combine with the same arithmetic Welford.Merge applies.
func mergeMetricStats(a, b MetricStats) MetricStats {
	w := welfordOfMetric(a)
	w.Merge(welfordOfMetric(b))
	m := MetricStats{N: w.N()}
	if m.N > 0 {
		m.Mean, m.Min, m.Max = w.Mean(), w.Min(), w.Max()
	}
	return m
}

func welfordOfMetric(m MetricStats) stats.Welford {
	if m.N <= 0 {
		return stats.Welford{}
	}
	return stats.WelfordFromState(stats.WelfordState{
		N: m.N, Mean: m.Mean, Min: m.Min, Max: m.Max,
	})
}

// mergeODStats folds two aggregates of the same direction. The frozen
// travel-time histograms merge bucket-exactly; a layout mismatch
// (obs.ErrLayoutMismatch) propagates — cross-layout counts are never
// combined.
func mergeODStats(a, b ODStats) (ODStats, error) {
	hist, err := a.TravelTimeS.Merge(b.TravelTimeS)
	if err != nil {
		return ODStats{}, fmt.Errorf("direction %s-%s: %w", a.From, a.To, err)
	}
	return ODStats{
		From: a.From, To: a.To,
		Trips:          a.Trips + b.Trips,
		TravelTimeS:    hist,
		DistKm:         mergeMetricStats(a.DistKm, b.DistKm),
		FuelMl:         mergeMetricStats(a.FuelMl, b.FuelMl),
		LowSpeedPct:    mergeMetricStats(a.LowSpeedPct, b.LowSpeedPct),
		NormalSpeedPct: mergeMetricStats(a.NormalSpeedPct, b.NormalSpeedPct),
		Attrs: AttrTotals{
			TrafficLights:       a.Attrs.TrafficLights + b.Attrs.TrafficLights,
			BusStops:            a.Attrs.BusStops + b.Attrs.BusStops,
			PedestrianCrossings: a.Attrs.PedestrianCrossings + b.Attrs.PedestrianCrossings,
			Junctions:           a.Attrs.Junctions + b.Attrs.Junctions,
		},
	}, nil
}

// MergeSnapshots combines per-shard snapshots into one fleet snapshot —
// the coordinator's core operation. The merge is commutative and
// associative up to float rounding (integer fields and histogram
// buckets exactly), and the empty snapshot is its identity, so the
// coordinator may fold shards in any arrival order.
//
// Validation: every pair of non-nil grids must describe the same frame
// and every pair of non-empty gate registrations must be identical
// (ErrFrameMismatch); histograms must share a bucket layout
// (obs.ErrLayoutMismatch, via the OD merge). The result carries:
// Epoch = max, Complete = AND over inputs (the fleet is sealed only
// when every shard is), PublishedAt = latest, counters summed.
//
// Nil snapshots are skipped; zero inputs yield the empty snapshot.
func MergeSnapshots(snaps ...*Snapshot) (*Snapshot, error) {
	out := &Snapshot{Complete: true}
	merged := 0
	for _, s := range snaps {
		if s == nil {
			continue
		}
		if s.Grid != nil {
			if out.Grid == nil {
				out.Grid = s.Grid
			} else if !sameFrame(out.Grid, s.Grid) {
				return nil, fmt.Errorf("%w: grid %+v cell %gm vs %+v cell %gm",
					ErrFrameMismatch, out.Grid.Area, out.Grid.CellM, s.Grid.Area, s.Grid.CellM)
			}
		}
		if len(s.Gates) > 0 {
			if len(out.Gates) == 0 {
				out.Gates = s.Gates
			} else if !sameGates(out.Gates, s.Gates) {
				return nil, fmt.Errorf("%w: gate registrations %v vs %v", ErrFrameMismatch, out.Gates, s.Gates)
			}
		}

		if s.Epoch > out.Epoch {
			out.Epoch = s.Epoch
		}
		if s.PublishedAt.After(out.PublishedAt) {
			out.PublishedAt = s.PublishedAt
		}
		out.CarsIngested += s.CarsIngested
		out.CarsFailed += s.CarsFailed
		out.Points += s.Points
		out.Complete = out.Complete && s.Complete

		for id, c := range s.Cells {
			if out.Cells == nil {
				out.Cells = make(map[grid.CellID]CellStats, len(s.Cells))
			}
			if prev, ok := out.Cells[id]; ok {
				out.Cells[id] = mergeCellStats(prev, c)
			} else {
				out.Cells[id] = c
			}
		}
		for key, ps := range s.EdgeProfiles {
			if out.EdgeProfiles == nil {
				out.EdgeProfiles = make(map[EdgeProfileKey]EdgeProfileStats, len(s.EdgeProfiles))
			}
			if prev, ok := out.EdgeProfiles[key]; ok {
				out.EdgeProfiles[key] = mergeProfileStats(prev, ps)
			} else {
				out.EdgeProfiles[key] = ps
			}
		}
		for key, od := range s.OD {
			if out.OD == nil {
				out.OD = make(map[ODKey]ODStats, len(s.OD))
			}
			if prev, ok := out.OD[key]; ok {
				m, err := mergeODStats(prev, od)
				if err != nil {
					return nil, err
				}
				out.OD[key] = m
			} else {
				out.OD[key] = od
			}
		}
		merged++
	}
	if merged == 0 {
		out.Complete = false
	}
	return out, nil
}
