// Package predict is the serving layer's estimation side: it turns the
// sink's learned per-edge travel-time profiles into answers — OD
// travel-time predictions routed over learned edge costs, and
// reference-vs-current anomaly reports over epoch history.
//
// The travel-time model follows the floating-car-data recipe: each
// matched route contributes per-edge pace observations (seconds per
// kilometre, bucketed by hour of day) on the ingest path; prediction
// routes the query OD pair over the road graph with each edge costed by
// its learned pace. Edges the fleet never drove fall back to free-flow
// time (length over speed limit), and sparsely observed edges are
// shrunk toward the fleet-wide mean congestion ratio with an LMM-style
// precision-weighted prior — a bucket with n observations gets weight
// n/(n+k) on its own mean and k/(n+k) on the global one, so a single
// noisy traversal cannot dominate an edge cost.
//
// Everything here reads immutable sink snapshots: a Predictor carries
// only the graph and router (safe for concurrent use), and every answer
// is a pure function of one snapshot, which keeps the /v1 ETag contract
// (equal epochs imply equal answers) intact.
package predict

import (
	"fmt"
	"math"
	"time"

	"repro/internal/geo"
	"repro/internal/obs"
	"repro/internal/roadnet"
	"repro/internal/sink"
)

// DefaultShrinkK is the default shrinkage prior weight: an edge bucket
// needs this many observations to count its own mean as much as the
// global prior.
const DefaultShrinkK = 8

// Predictor answers OD travel-time queries over one road graph. All
// fields are read-only after construction; methods are safe for
// concurrent use.
type Predictor struct {
	Graph  *roadnet.Graph
	Router *roadnet.Router
	// ShrinkK is the shrinkage prior weight k (default DefaultShrinkK;
	// negative disables shrinkage entirely — observed means are used
	// raw).
	ShrinkK float64

	met predictorMetrics
}

type predictorMetrics struct {
	requests *obs.Counter
	noPath   *obs.Counter
	latency  *obs.Histogram
}

// NewPredictor builds a predictor over the pipeline's graph and router.
func NewPredictor(g *roadnet.Graph, r *roadnet.Router) *Predictor {
	return &Predictor{Graph: g, Router: r, ShrinkK: DefaultShrinkK}
}

// WithMetrics registers the predict_* instrumentation with reg
// (requests, no-path misses, latency); returns p for chaining.
func (p *Predictor) WithMetrics(reg *obs.Registry) *Predictor {
	p.met = predictorMetrics{
		requests: reg.Counter("predict_requests_total"),
		noPath:   reg.Counter("predict_no_path_total"),
		latency:  reg.Histogram("predict_seconds"),
	}
	return p
}

// Prediction is one answered OD query.
type Prediction struct {
	// TravelS is the predicted travel time in seconds: the path cost
	// over learned (shrunk) edge paces with free-flow fallback.
	TravelS float64
	// FreeFlowS is the same path timed at free flow — the congestion-
	// free lower bound the learned costs deviate from.
	FreeFlowS float64
	// DistanceKm is the routed path length.
	DistanceKm float64
	// Edges and ObservedEdges count the path's directed edge traversals
	// and how many of them had a learned profile bucket — the coverage
	// signal behind the prediction.
	Edges         int
	ObservedEdges int
	// GlobalRatio is the fleet-wide mean congestion ratio (observed
	// pace over free-flow pace) of the queried hour bucket — the
	// shrinkage prior target (1 with no observations).
	GlobalRatio float64
	// Hour is the queried hour bucket (-1: all-day profile).
	Hour int
}

// edgeObservation is one edge's aggregated profile for the queried
// hour: observation count and mean pace in s/km.
type edgeObservation struct {
	n    int
	pace float64
}

// freeFlowPaceSPerKm is an edge's free-flow pace in seconds per km.
func freeFlowPaceSPerKm(e *roadnet.Edge) float64 {
	if e.SpeedLimitKmh <= 0 {
		return 0
	}
	return 3600 / e.SpeedLimitKmh
}

// profileFor collects the per-edge observations of the queried hour
// (hour < 0 folds all buckets of an edge together, n-weighted) and the
// global congestion ratio prior. Iteration is in sorted key order so
// the float accumulation — and therefore the prediction — is a
// deterministic function of the snapshot values.
func (p *Predictor) profileFor(snap *sink.Snapshot, hour int) (map[roadnet.EdgeID]edgeObservation, float64) {
	edges := make(map[roadnet.EdgeID]edgeObservation)
	var ratioSum, weight float64
	for _, key := range snap.EdgeProfileKeys() {
		if hour >= 0 && key.Hour != hour {
			continue
		}
		ps := snap.EdgeProfiles[key]
		if ps.N <= 0 || int(key.Edge) < 0 || int(key.Edge) >= len(p.Graph.Edges) {
			continue
		}
		ff := freeFlowPaceSPerKm(&p.Graph.Edges[key.Edge])
		if ff <= 0 {
			continue
		}
		prev := edges[key.Edge]
		n := prev.n + ps.N
		edges[key.Edge] = edgeObservation{
			n:    n,
			pace: (prev.pace*float64(prev.n) + ps.MeanSPerKm*float64(ps.N)) / float64(n),
		}
		ratioSum += float64(ps.N) * (ps.MeanSPerKm / ff)
		weight += float64(ps.N)
	}
	if weight == 0 {
		return edges, 1
	}
	return edges, ratioSum / weight
}

// Predict routes from the node nearest `from` to the node nearest `to`
// over learned edge costs for the given hour bucket (0-23; negative
// uses the all-day profile) and returns the predicted travel time.
// Unroutable pairs return roadnet.ErrNoPath.
func (p *Predictor) Predict(snap *sink.Snapshot, from, to geo.XY, hour int) (*Prediction, error) {
	start := time.Now()
	p.met.requests.Inc()
	defer func() { p.met.latency.Observe(time.Since(start).Seconds()) }()

	if hour > 23 {
		return nil, fmt.Errorf("predict: hour %d out of range 0..23", hour)
	}
	a, b := p.Graph.NearestNode(from), p.Graph.NearestNode(to)
	if a == nil || b == nil {
		return nil, fmt.Errorf("predict: the road graph has no nodes")
	}
	edges, global := p.profileFor(snap, hour)
	k := p.ShrinkK
	if k == 0 {
		k = DefaultShrinkK
	} else if k < 0 {
		k = 0
	}

	weight := func(e *roadnet.Edge, forward bool) float64 {
		ff := roadnet.TravelTimeWeight(e, forward)
		o, ok := edges[e.ID]
		if !ok {
			return ff
		}
		ffPace := freeFlowPaceSPerKm(e)
		if ffPace <= 0 {
			return ff
		}
		ratio := o.pace / ffPace
		shrunk := (float64(o.n)*ratio + k*global) / (float64(o.n) + k)
		return ff * shrunk
	}
	path, err := p.Router.ShortestPath(a.ID, b.ID, weight)
	if err != nil {
		p.met.noPath.Inc()
		return nil, err
	}

	pred := &Prediction{
		TravelS:     path.Cost,
		DistanceKm:  path.Length / 1000,
		Edges:       len(path.Steps),
		GlobalRatio: global,
		Hour:        hour,
	}
	if hour < 0 {
		pred.Hour = -1
	}
	for _, st := range path.Steps {
		pred.FreeFlowS += roadnet.TravelTimeWeight(st.Edge, st.Forward)
		if _, ok := edges[st.Edge.ID]; ok {
			pred.ObservedEdges++
		}
	}
	// Guard against IEEE residue on the sums: the prediction must never
	// carry NaN/Inf into a JSON surface.
	if math.IsNaN(pred.TravelS) || math.IsInf(pred.TravelS, 0) {
		return nil, fmt.Errorf("predict: non-finite travel time over %d edges", pred.Edges)
	}
	return pred, nil
}
