package predict

import (
	"fmt"
	"testing"

	"repro/internal/digiroad"
	"repro/internal/geo"
	"repro/internal/grid"
	"repro/internal/obs"
	"repro/internal/roadnet"
	"repro/internal/sink"
)

// benchGraph builds an n x n street grid (spacing 200 m, 36 km/h), a
// road network big enough that the routing cost dominates the way it
// does on a real city graph.
func benchGraph(b *testing.B, n int) (*roadnet.Graph, *roadnet.Router) {
	b.Helper()
	db := digiroad.NewDatabase(digiroad.OuluOrigin)
	const step = 200.0
	id := 1
	add := func(x1, y1, x2, y2 float64) {
		_, err := db.AddElement(digiroad.TrafficElement{
			ID: id, Geom: geo.Line(x1, y1, x2, y2),
			Class: digiroad.ClassLocal, Flow: digiroad.FlowBoth, SpeedLimitKmh: 36,
		})
		if err != nil {
			b.Fatal(err)
		}
		id++
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i+1 < n {
				add(float64(i)*step, float64(j)*step, float64(i+1)*step, float64(j)*step)
			}
			if j+1 < n {
				add(float64(i)*step, float64(j)*step, float64(i)*step, float64(j+1)*step)
			}
		}
	}
	g, err := roadnet.Build(db)
	if err != nil {
		b.Fatal(err)
	}
	return g, roadnet.NewRouter(g, roadnet.RouterOptions{})
}

// benchSnapshot profiles every edge of the graph at three rush hours,
// the worst case for profileFor (the whole map is scanned per query).
func benchSnapshot(g *roadnet.Graph) *sink.Snapshot {
	profiles := map[sink.EdgeProfileKey]sink.EdgeProfileStats{}
	for i := range g.Edges {
		for _, hour := range []int{7, 8, 9} {
			pace := 100.0 + float64(int(g.Edges[i].ID)%7)*20
			profiles[sink.EdgeProfileKey{Edge: g.Edges[i].ID, Hour: hour}] = sink.EdgeProfileStats{
				N: 25, MeanSPerKm: pace, VarSPerKm: 40, MinSPerKm: pace - 30, MaxSPerKm: pace + 30,
			}
		}
	}
	return &sink.Snapshot{Epoch: 1, EdgeProfiles: profiles}
}

// BenchmarkPredict measures one end-to-end /v1/predict evaluation —
// profile fold, weighted shortest path, prediction assembly — against
// a 24x24 street grid, with and without learned profiles.
func BenchmarkPredict(b *testing.B) {
	g, r := benchGraph(b, 24)
	from := geo.XY{X: 0, Y: 0}
	to := geo.XY{X: 23 * 200, Y: 23 * 200}
	for _, bc := range []struct {
		name string
		snap *sink.Snapshot
		hour int
	}{
		{"freeflow", &sink.Snapshot{Epoch: 1}, -1},
		{"profiled_hour", benchSnapshot(g), 8},
		{"profiled_allday", benchSnapshot(g), -1},
	} {
		b.Run(fmt.Sprintf("%s/edges=%d", bc.name, len(g.Edges)), func(b *testing.B) {
			pr := NewPredictor(g, r)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := pr.Predict(bc.snap, from, to, bc.hour); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	// The serving path answers concurrent queries over one shared
	// predictor and snapshot; GOMAXPROCS goroutines stress exactly that.
	b.Run(fmt.Sprintf("profiled_hour_concurrent/edges=%d", len(g.Edges)), func(b *testing.B) {
		pr := NewPredictor(g, r)
		snap := benchSnapshot(g)
		b.ReportAllocs()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				if _, err := pr.Predict(snap, from, to, 8); err != nil {
					b.Fatal(err)
				}
			}
		})
	})
}

// BenchmarkAnomalyReport measures one /v1/anomalies evaluation — score
// every cell and OD against the EW reference, then fold the epoch —
// at serving-realistic snapshot sizes.
func BenchmarkAnomalyReport(b *testing.B) {
	for _, cells := range []int{100, 1000} {
		b.Run(fmt.Sprintf("cells=%d", cells), func(b *testing.B) {
			base := func(epoch uint64) *sink.Snapshot {
				cs := make(map[grid.CellID]sink.CellStats, cells)
				for i := 0; i < cells; i++ {
					cs[grid.CellID{I: i % 40, J: i / 40}] = sink.CellStats{
						N: 30, MeanKmh: 25 + float64(i%10),
					}
				}
				h := &obs.Histogram{}
				for i := 0; i < 10; i++ {
					h.Observe(240)
				}
				return &sink.Snapshot{
					Epoch: epoch,
					Cells: cs,
					OD: map[sink.ODKey]sink.ODStats{
						{From: "T", To: "S"}: {
							From: "T", To: "S", Trips: 10,
							TravelTimeS: h.Freeze(),
							DistKm:      sink.MetricStats{N: 10, Mean: 2, Min: 2, Max: 2},
						},
					},
				}
			}
			det := NewAnomalyDetector(AnomalyConfig{})
			for e := uint64(1); e <= 4; e++ {
				det.Observe(base(e))
			}
			snap := base(100)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				snap.Epoch = uint64(100 + i) // each epoch scored and folded once
				if rep := det.Report(snap); rep.CellsScored == 0 {
					b.Fatal("nothing scored")
				}
			}
		})
	}
}
