package predict

import (
	"errors"
	"math"
	"reflect"
	"testing"

	"repro/internal/digiroad"
	"repro/internal/geo"
	"repro/internal/roadnet"
	"repro/internal/sink"
)

// testGraph builds a small two-route network between x=0 and x=400 on
// y=0: a direct 400 m street along y=0, and a 600 m detour via y=100.
// All streets are two-way 36 km/h locals, so free-flow pace is a round
// 100 s/km and the direct route wins at free flow (40 s vs 60 s).
func testGraph(t *testing.T) (*roadnet.Graph, *roadnet.Router) {
	t.Helper()
	db := digiroad.NewDatabase(digiroad.OuluOrigin)
	els := []digiroad.TrafficElement{
		{ID: 1, Geom: geo.Line(0, 0, 200, 0), Class: digiroad.ClassLocal, Flow: digiroad.FlowBoth, SpeedLimitKmh: 36},
		{ID: 2, Geom: geo.Line(200, 0, 400, 0), Class: digiroad.ClassLocal, Flow: digiroad.FlowBoth, SpeedLimitKmh: 36},
		{ID: 3, Geom: geo.Line(0, 0, 0, 100), Class: digiroad.ClassLocal, Flow: digiroad.FlowBoth, SpeedLimitKmh: 36},
		{ID: 4, Geom: geo.Line(0, 100, 400, 100), Class: digiroad.ClassLocal, Flow: digiroad.FlowBoth, SpeedLimitKmh: 36},
		{ID: 5, Geom: geo.Line(400, 100, 400, 0), Class: digiroad.ClassLocal, Flow: digiroad.FlowBoth, SpeedLimitKmh: 36},
		// Dead-end spurs pin junction nodes at the OD endpoints —
		// without a third incident element the ring's corners are all
		// degree-2 and chain-walking would collapse it to a self-loop.
		{ID: 6, Geom: geo.Line(0, 0, 0, -50), Class: digiroad.ClassLocal, Flow: digiroad.FlowBoth, SpeedLimitKmh: 36},
		{ID: 7, Geom: geo.Line(400, 0, 400, -50), Class: digiroad.ClassLocal, Flow: digiroad.FlowBoth, SpeedLimitKmh: 36},
	}
	for _, e := range els {
		if _, err := db.AddElement(e); err != nil {
			t.Fatal(err)
		}
	}
	g, err := roadnet.Build(db)
	if err != nil {
		t.Fatal(err)
	}
	return g, roadnet.NewRouter(g, roadnet.RouterOptions{})
}

// edgeByElement finds the graph edge built from the given traffic
// element ID.
func edgeByElement(t *testing.T, g *roadnet.Graph, element int) *roadnet.Edge {
	t.Helper()
	for i := range g.Edges {
		for _, el := range g.Edges[i].Elements {
			if el == element {
				return &g.Edges[i]
			}
		}
	}
	t.Fatalf("no edge carries element %d", element)
	return nil
}

// profiled builds a snapshot whose profile buckets pace the given edges
// at ratio × free-flow for the given hour with n observations each.
func profiled(g *roadnet.Graph, hour int, n int, ratios map[roadnet.EdgeID]float64) *sink.Snapshot {
	snap := &sink.Snapshot{Epoch: 1, EdgeProfiles: map[sink.EdgeProfileKey]sink.EdgeProfileStats{}}
	for id, ratio := range ratios {
		e := &g.Edges[id]
		pace := ratio * 3600 / e.SpeedLimitKmh
		snap.EdgeProfiles[sink.EdgeProfileKey{Edge: id, Hour: hour}] = sink.EdgeProfileStats{
			N: n, MeanSPerKm: pace, MinSPerKm: pace, MaxSPerKm: pace,
		}
	}
	return snap
}

// allEdgesRatio maps every edge of g to the same congestion ratio.
func allEdgesRatio(g *roadnet.Graph, ratio float64) map[roadnet.EdgeID]float64 {
	m := make(map[roadnet.EdgeID]float64, len(g.Edges))
	for i := range g.Edges {
		m[roadnet.EdgeID(i)] = ratio
	}
	return m
}

var odFrom, odTo = geo.V(0, 0), geo.V(400, 0)

func TestPredictFreeFlowFallback(t *testing.T) {
	g, r := testGraph(t)
	p := NewPredictor(g, r)
	pred, err := p.Predict(&sink.Snapshot{}, odFrom, odTo, 8)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pred.TravelS-40) > 1e-9 || math.Abs(pred.FreeFlowS-40) > 1e-9 {
		t.Fatalf("free-flow prediction = %+v, want 40 s direct", pred)
	}
	if pred.ObservedEdges != 0 || pred.GlobalRatio != 1 {
		t.Fatalf("empty snapshot must predict pure free flow: %+v", pred)
	}
	if math.Abs(pred.DistanceKm-0.4) > 1e-9 || pred.Edges == 0 {
		t.Fatalf("direct route geometry: %+v", pred)
	}
}

func TestPredictUsesLearnedPaces(t *testing.T) {
	g, r := testGraph(t)
	p := NewPredictor(g, r)
	// Uniform congestion at twice free flow, observed at hour 8: every
	// edge's shrunk ratio equals the global 2, so the whole network
	// slows uniformly and the direct route stays optimal at 80 s.
	snap := profiled(g, 8, 10, allEdgesRatio(g, 2))

	pred, err := p.Predict(snap, odFrom, odTo, 8)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pred.TravelS-80) > 1e-6 || math.Abs(pred.FreeFlowS-40) > 1e-9 {
		t.Fatalf("uniform 2x congestion: %+v, want 80 s over 40 s free flow", pred)
	}
	if pred.ObservedEdges != pred.Edges || math.Abs(pred.GlobalRatio-2) > 1e-9 {
		t.Fatalf("coverage: %+v", pred)
	}

	// The unobserved hour falls back to free flow.
	offPeak, err := p.Predict(snap, odFrom, odTo, 9)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(offPeak.TravelS-40) > 1e-9 || offPeak.ObservedEdges != 0 {
		t.Fatalf("hour without observations: %+v, want free flow", offPeak)
	}

	// The all-day profile folds every bucket and sees the congestion.
	allDay, err := p.Predict(snap, odFrom, odTo, -1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(allDay.TravelS-80) > 1e-6 || allDay.Hour != -1 {
		t.Fatalf("all-day profile: %+v, want 80 s", allDay)
	}
}

func TestPredictRoutesAroundCongestion(t *testing.T) {
	g, r := testGraph(t)
	p := NewPredictor(g, r)
	// Jam only the direct street (both its elements) at 10x free flow
	// with heavy observation counts; the detour stays free. Routing over
	// learned costs must take the 600 m detour at ~60 s rather than the
	// jammed 400 m street at ~400 s.
	jam := map[roadnet.EdgeID]float64{
		edgeByElement(t, g, 1).ID: 10,
		edgeByElement(t, g, 2).ID: 10,
	}
	snap := profiled(g, 8, 1000, jam)

	pred, err := p.Predict(snap, odFrom, odTo, 8)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pred.DistanceKm-0.6) > 1e-9 {
		t.Fatalf("prediction did not reroute: %+v, want the 600 m detour", pred)
	}
	if pred.TravelS > 100 {
		t.Fatalf("detour should cost about a minute, got %+v", pred)
	}
}

func TestPredictShrinkagePullsThinEdgesTowardGlobal(t *testing.T) {
	g, r := testGraph(t)
	// One thin outlier observation (n=1, ratio 4) on the direct street;
	// everything else observed heavily at free flow, anchoring the
	// global ratio near 1. Raw costing prices the direct street at
	// 160 s — past the 60 s detour — while the shrunk ratio
	// (1·4 + 8·~1)/9 ≈ 1.3 keeps it under.
	ratios := allEdgesRatio(g, 1)
	outlier := edgeByElement(t, g, 1).ID
	snap := profiled(g, 8, 100, ratios)
	pace := 4 * 3600 / g.Edges[outlier].SpeedLimitKmh
	snap.EdgeProfiles[sink.EdgeProfileKey{Edge: outlier, Hour: 8}] = sink.EdgeProfileStats{
		N: 1, MeanSPerKm: pace, MinSPerKm: pace, MaxSPerKm: pace,
	}

	shrunk := NewPredictor(g, r)
	raw := NewPredictor(g, r)
	raw.ShrinkK = -1 // disable shrinkage

	sp, err := shrunk.Predict(snap, odFrom, odTo, 8)
	if err != nil {
		t.Fatal(err)
	}
	rp, err := raw.Predict(snap, odFrom, odTo, 8)
	if err != nil {
		t.Fatal(err)
	}
	// Raw costing trusts the single outlier and reroutes; shrinkage
	// discounts it toward the near-1 global and keeps the direct route.
	if math.Abs(sp.DistanceKm-0.4) > 1e-9 {
		t.Fatalf("shrunk prediction abandoned the direct route: %+v", sp)
	}
	if rp.DistanceKm <= sp.DistanceKm {
		t.Fatalf("raw prediction should reroute around the outlier: raw %+v vs shrunk %+v", rp, sp)
	}
	if sp.TravelS >= 100 {
		t.Fatalf("shrunk direct-route time out of range: %+v", sp)
	}
}

func TestPredictDeterministic(t *testing.T) {
	g, r := testGraph(t)
	p := NewPredictor(g, r)
	snap := profiled(g, 8, 3, allEdgesRatio(g, 1.7))
	first, err := p.Predict(snap, odFrom, odTo, 8)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		again, err := p.Predict(snap, odFrom, odTo, 8)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(first, again) {
			t.Fatalf("prediction not deterministic: %+v vs %+v", first, again)
		}
	}
}

func TestPredictErrors(t *testing.T) {
	g, r := testGraph(t)
	p := NewPredictor(g, r)
	if _, err := p.Predict(&sink.Snapshot{}, odFrom, odTo, 24); err == nil {
		t.Fatal("hour 24 must be rejected")
	}

	// A one-way street against the query direction leaves no path.
	db := digiroad.NewDatabase(digiroad.OuluOrigin)
	if _, err := db.AddElement(digiroad.TrafficElement{
		ID: 1, Geom: geo.Line(0, 0, 100, 0), Class: digiroad.ClassLocal,
		Flow: digiroad.FlowForward, SpeedLimitKmh: 36,
	}); err != nil {
		t.Fatal(err)
	}
	oneway, err := roadnet.Build(db)
	if err != nil {
		t.Fatal(err)
	}
	q := NewPredictor(oneway, roadnet.NewRouter(oneway, roadnet.RouterOptions{}))
	if _, err := q.Predict(&sink.Snapshot{}, geo.V(100, 0), geo.V(0, 0), 8); !errors.Is(err, roadnet.ErrNoPath) {
		t.Fatalf("want ErrNoPath, got %v", err)
	}
}
