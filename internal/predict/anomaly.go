package predict

import (
	"math"
	"sort"
	"sync"

	"repro/internal/grid"
	"repro/internal/obs"
	"repro/internal/sink"
)

// AnomalyConfig tunes the reference-vs-current comparator.
type AnomalyConfig struct {
	// Alpha is the exponential weight of the newest epoch in the rolling
	// reference (default 0.3): mean += α·(x−mean), var decays by (1−α).
	Alpha float64
	// ZThreshold is the |z| at which a deviation is flagged (default 3).
	ZThreshold float64
	// MinRefEpochs is how many epochs a series must appear in before it
	// can alarm (default 3) — a reference of one observation has no
	// notion of "usual".
	MinRefEpochs int
	// MinN is the minimum per-epoch sample count (cell points / OD
	// trips) for an observation to enter scoring or the reference
	// (default 5); thinner aggregates are too noisy either way.
	MinN int
	// MinRelStd floors the z denominator at this fraction of the
	// reference mean (default 0.05), so a reference that happened to
	// repeat exactly cannot alarm on a 1%% wiggle, and zero-variance
	// references still score finitely.
	MinRelStd float64
}

func (c AnomalyConfig) withDefaults() AnomalyConfig {
	if c.Alpha <= 0 || c.Alpha > 1 {
		c.Alpha = 0.3
	}
	if c.ZThreshold <= 0 {
		c.ZThreshold = 3
	}
	if c.MinRefEpochs <= 0 {
		c.MinRefEpochs = 3
	}
	if c.MinN <= 0 {
		c.MinN = 5
	}
	if c.MinRelStd <= 0 {
		c.MinRelStd = 0.05
	}
	return c
}

// ewStat is one series' exponentially-weighted reference: mean and
// variance of its per-epoch values, plus the number of epochs folded.
type ewStat struct {
	n    int
	mean float64
	vr   float64
}

func (s *ewStat) observe(x, alpha float64) {
	if s.n == 0 {
		s.mean = x
	} else {
		d := x - s.mean
		incr := alpha * d
		s.mean += incr
		s.vr = (1 - alpha) * (s.vr + d*incr)
	}
	s.n++
}

// CellAnomaly is one grid cell whose current mean speed deviates from
// its reference.
type CellAnomaly struct {
	Cell grid.CellID
	// CurrentKmh / ReferenceKmh are this epoch's and the rolling
	// reference's mean speeds; Z is the deviation in (floored) reference
	// standard deviations — negative means slower than usual.
	CurrentKmh   float64
	ReferenceKmh float64
	Z            float64
	N            int
}

// ODAnomaly is one direction whose current pace (s/km) deviates from
// its reference. Pace, not raw travel time, so the signal tracks
// congestion rather than route-length mix.
type ODAnomaly struct {
	Dir             sink.ODKey
	CurrentSPerKm   float64
	ReferenceSPerKm float64
	Z               float64
	Trips           int
}

// AnomalyReport scores one epoch against the rolling reference. Equal
// epochs yield the identical report (it is memoized), preserving the
// serving layer's ETag contract.
type AnomalyReport struct {
	Epoch uint64
	// RefEpochs counts epochs folded into the reference before this one
	// was scored; below MinRefEpochs nothing can be flagged yet.
	RefEpochs int
	// CellsScored / ODsScored count the series that passed the MinN and
	// MinRefEpochs admission — the denominator behind the flag lists.
	CellsScored int
	ODsScored   int
	// Cells and ODs list the flagged deviations, most severe (largest
	// |z|) first.
	Cells []CellAnomaly
	ODs   []ODAnomaly
}

// AnomalyDetector maintains the rolling reference over observed epochs
// and scores each new snapshot against it. Safe for concurrent use.
type AnomalyDetector struct {
	cfg AnomalyConfig

	mu        sync.Mutex
	cells     map[grid.CellID]*ewStat
	ods       map[sink.ODKey]*ewStat
	refEpochs int
	lastEpoch uint64
	last      *AnomalyReport

	met detectorMetrics
}

type detectorMetrics struct {
	reports *obs.Counter
	cells   *obs.Gauge
	ods     *obs.Gauge
}

// NewAnomalyDetector builds a detector; zero config fields take the
// documented defaults.
func NewAnomalyDetector(cfg AnomalyConfig) *AnomalyDetector {
	return &AnomalyDetector{
		cfg:   cfg.withDefaults(),
		cells: map[grid.CellID]*ewStat{},
		ods:   map[sink.ODKey]*ewStat{},
	}
}

// WithMetrics registers the anomaly_* instrumentation with reg; returns
// d for chaining.
func (d *AnomalyDetector) WithMetrics(reg *obs.Registry) *AnomalyDetector {
	d.met = detectorMetrics{
		reports: reg.Counter("anomaly_reports_total"),
		cells:   reg.Gauge("anomaly_flagged_cells"),
		ods:     reg.Gauge("anomaly_flagged_od"),
	}
	return d
}

// Observe folds snap into the rolling reference without scoring it —
// priming for tests and replays. Unlike Report it folds
// unconditionally, whatever the epoch.
func (d *AnomalyDetector) Observe(snap *sink.Snapshot) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.observeLocked(snap)
	if snap.Epoch > d.lastEpoch {
		d.lastEpoch = snap.Epoch
	}
}

// Report scores snap against the rolling reference, then — only when
// the epoch advanced past everything already folded — absorbs it into
// the reference. Scoring before folding keeps the comparison honest (an
// epoch is never compared against itself), and the epoch guard plus
// memoization make Report(snap) a pure function of the snapshot: the
// serving layer may call it on every request.
func (d *AnomalyDetector) Report(snap *sink.Snapshot) *AnomalyReport {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.last != nil && d.last.Epoch == snap.Epoch {
		return d.last
	}
	rep := d.scoreLocked(snap)
	if snap.Epoch > d.lastEpoch {
		d.observeLocked(snap)
		d.lastEpoch = snap.Epoch
	}
	d.last = rep
	d.met.reports.Inc()
	d.met.cells.Set(int64(len(rep.Cells)))
	d.met.ods.Set(int64(len(rep.ODs)))
	return rep
}

// odPace extracts a direction's mean pace in s/km, with ok=false when
// the aggregate is too thin to define one.
func odPace(od sink.ODStats, minN int) (float64, bool) {
	if od.Trips < minN || od.DistKm.Mean <= 0 {
		return 0, false
	}
	mean := od.TravelTimeS.Mean()
	if math.IsNaN(mean) || mean <= 0 {
		return 0, false
	}
	return mean / od.DistKm.Mean, true
}

func (d *AnomalyDetector) observeLocked(snap *sink.Snapshot) {
	for id, c := range snap.Cells {
		if c.N < d.cfg.MinN {
			continue
		}
		s := d.cells[id]
		if s == nil {
			s = &ewStat{}
			d.cells[id] = s
		}
		s.observe(c.MeanKmh, d.cfg.Alpha)
	}
	for key, od := range snap.OD {
		pace, ok := odPace(od, d.cfg.MinN)
		if !ok {
			continue
		}
		s := d.ods[key]
		if s == nil {
			s = &ewStat{}
			d.ods[key] = s
		}
		s.observe(pace, d.cfg.Alpha)
	}
	d.refEpochs++
}

// score computes the floored z of x against ref, and whether the series
// is admissible for flagging at all.
func (d *AnomalyDetector) score(ref *ewStat, x float64) (float64, bool) {
	if ref == nil || ref.n < d.cfg.MinRefEpochs {
		return 0, false
	}
	sd := math.Sqrt(math.Max(ref.vr, 0))
	floor := d.cfg.MinRelStd * math.Abs(ref.mean)
	if sd < floor {
		sd = floor
	}
	if sd <= 0 {
		return 0, false
	}
	return (x - ref.mean) / sd, true
}

func (d *AnomalyDetector) scoreLocked(snap *sink.Snapshot) *AnomalyReport {
	rep := &AnomalyReport{Epoch: snap.Epoch, RefEpochs: d.refEpochs}
	for _, id := range snap.CellIDs() {
		c := snap.Cells[id]
		if c.N < d.cfg.MinN {
			continue
		}
		z, ok := d.score(d.cells[id], c.MeanKmh)
		if !ok {
			continue
		}
		rep.CellsScored++
		if math.Abs(z) >= d.cfg.ZThreshold {
			rep.Cells = append(rep.Cells, CellAnomaly{
				Cell: id, CurrentKmh: c.MeanKmh,
				ReferenceKmh: d.cells[id].mean, Z: z, N: c.N,
			})
		}
	}
	for _, key := range snap.Directions() {
		od := snap.OD[key]
		pace, ok := odPace(od, d.cfg.MinN)
		if !ok {
			continue
		}
		z, ok := d.score(d.ods[key], pace)
		if !ok {
			continue
		}
		rep.ODsScored++
		if math.Abs(z) >= d.cfg.ZThreshold {
			rep.ODs = append(rep.ODs, ODAnomaly{
				Dir: key, CurrentSPerKm: pace,
				ReferenceSPerKm: d.ods[key].mean, Z: z, Trips: od.Trips,
			})
		}
	}
	sort.Slice(rep.Cells, func(i, j int) bool {
		if math.Abs(rep.Cells[i].Z) != math.Abs(rep.Cells[j].Z) {
			return math.Abs(rep.Cells[i].Z) > math.Abs(rep.Cells[j].Z)
		}
		a, b := rep.Cells[i].Cell, rep.Cells[j].Cell
		if a.I != b.I {
			return a.I < b.I
		}
		return a.J < b.J
	})
	sort.Slice(rep.ODs, func(i, j int) bool {
		if math.Abs(rep.ODs[i].Z) != math.Abs(rep.ODs[j].Z) {
			return math.Abs(rep.ODs[i].Z) > math.Abs(rep.ODs[j].Z)
		}
		a, b := rep.ODs[i].Dir, rep.ODs[j].Dir
		if a.From != b.From {
			return a.From < b.From
		}
		return a.To < b.To
	})
	return rep
}
