package predict

import (
	"math"
	"testing"

	"repro/internal/grid"
	"repro/internal/obs"
	"repro/internal/sink"
)

// quietSnapshot builds one epoch of "usual" traffic: two cells around
// the given speeds and one OD direction at the given travel time over a
// fixed 2 km route. jitter shifts the values slightly so the reference
// accumulates a realistic nonzero variance.
func quietSnapshot(epoch uint64, jitter float64) *sink.Snapshot {
	h := &obs.Histogram{}
	for i := 0; i < 10; i++ {
		h.Observe(240 + jitter)
	}
	return &sink.Snapshot{
		Epoch: epoch,
		Cells: map[grid.CellID]sink.CellStats{
			{I: 1, J: 1}: {N: 40, MeanKmh: 30 + jitter},
			{I: 2, J: 1}: {N: 40, MeanKmh: 45 - jitter},
			{I: 3, J: 9}: {N: 2, MeanKmh: 80}, // under MinN, never scored
		},
		OD: map[sink.ODKey]sink.ODStats{
			{From: "T", To: "S"}: {
				From: "T", To: "S", Trips: 10,
				TravelTimeS: h.Freeze(),
				DistKm:      sink.MetricStats{N: 10, Mean: 2, Min: 2, Max: 2},
			},
		},
	}
}

// primedDetector folds n quiet epochs into a fresh detector.
func primedDetector(n int) *AnomalyDetector {
	d := NewAnomalyDetector(AnomalyConfig{})
	for i := 0; i < n; i++ {
		d.Observe(quietSnapshot(uint64(i+1), float64(i%3)-1))
	}
	return d
}

func TestAnomalyQuietEpochNotFlagged(t *testing.T) {
	d := primedDetector(4)
	rep := d.Report(quietSnapshot(10, 0))
	if len(rep.Cells) != 0 || len(rep.ODs) != 0 {
		t.Fatalf("quiet epoch flagged: %+v", rep)
	}
	if rep.CellsScored != 2 || rep.ODsScored != 1 {
		t.Fatalf("scored = %d cells %d ods, want 2 and 1 (thin cell excluded)", rep.CellsScored, rep.ODsScored)
	}
	if rep.RefEpochs != 4 || rep.Epoch != 10 {
		t.Fatalf("report header: %+v", rep)
	}
}

func TestAnomalyFlagsInjectedIncident(t *testing.T) {
	d := primedDetector(4)
	// The incident: cell (1,1) halves its speed, and the OD direction's
	// travel time doubles (pace 120 -> 240 s/km).
	snap := quietSnapshot(10, 0)
	snap.Cells[grid.CellID{I: 1, J: 1}] = sink.CellStats{N: 40, MeanKmh: 15}
	h := &obs.Histogram{}
	for i := 0; i < 10; i++ {
		h.Observe(480)
	}
	od := snap.OD[sink.ODKey{From: "T", To: "S"}]
	od.TravelTimeS = h.Freeze()
	snap.OD[sink.ODKey{From: "T", To: "S"}] = od

	rep := d.Report(snap)
	if len(rep.Cells) != 1 || rep.Cells[0].Cell != (grid.CellID{I: 1, J: 1}) {
		t.Fatalf("flagged cells = %+v, want exactly the slowed cell", rep.Cells)
	}
	if ca := rep.Cells[0]; ca.Z >= -3 || math.Abs(ca.CurrentKmh-15) > 1e-9 {
		t.Fatalf("cell anomaly = %+v, want strongly negative z at 15 km/h", ca)
	}
	if len(rep.ODs) != 1 || rep.ODs[0].Dir != (sink.ODKey{From: "T", To: "S"}) {
		t.Fatalf("flagged ODs = %+v, want exactly the slowed direction", rep.ODs)
	}
	if oa := rep.ODs[0]; oa.Z <= 3 || oa.CurrentSPerKm <= oa.ReferenceSPerKm {
		t.Fatalf("od anomaly = %+v, want strongly positive pace z", oa)
	}

	// After the incident epoch, normal traffic at a later epoch must
	// not stay flagged (the incident only nudges the EW reference).
	after := d.Report(quietSnapshot(11, 0))
	if len(after.Cells) != 0 || len(after.ODs) != 0 {
		t.Fatalf("recovery epoch still flagged: %+v", after)
	}
}

func TestAnomalyColdStartStaysSilent(t *testing.T) {
	d := primedDetector(2) // below the default MinRefEpochs of 3
	snap := quietSnapshot(10, 0)
	snap.Cells[grid.CellID{I: 1, J: 1}] = sink.CellStats{N: 40, MeanKmh: 1}
	rep := d.Report(snap)
	if len(rep.Cells) != 0 || len(rep.ODs) != 0 || rep.CellsScored != 0 {
		t.Fatalf("thin reference must not alarm: %+v", rep)
	}
}

func TestAnomalyReportMemoizedPerEpoch(t *testing.T) {
	d := primedDetector(4)
	snap := quietSnapshot(10, 0)
	first := d.Report(snap)
	if again := d.Report(snap); again != first {
		t.Fatal("same epoch must return the memoized report")
	}
	// Scoring the same epoch twice must not have folded it twice: a
	// later report still sees exactly 5 reference epochs.
	next := d.Report(quietSnapshot(11, 0))
	if next.RefEpochs != 5 {
		t.Fatalf("reference epochs = %d, want 5 (epoch 10 folded once)", next.RefEpochs)
	}
	// A stale (already-folded) epoch is scored but never re-folded.
	if stale := d.Report(quietSnapshot(3, 0)); stale.Epoch != 3 {
		t.Fatalf("stale report: %+v", stale)
	}
	if last := d.Report(quietSnapshot(12, 0)); last.RefEpochs != 6 {
		t.Fatalf("reference epochs = %d, want 6 (stale epoch not folded)", last.RefEpochs)
	}
}

func TestAnomalyZeroVarianceReferenceScoresFinitely(t *testing.T) {
	// Byte-identical quiet epochs leave the EW variance at exactly zero;
	// the relative floor must keep z finite and still catch the
	// incident.
	d := NewAnomalyDetector(AnomalyConfig{})
	for i := 0; i < 4; i++ {
		d.Observe(quietSnapshot(uint64(i+1), 0))
	}
	snap := quietSnapshot(10, 0)
	snap.Cells[grid.CellID{I: 1, J: 1}] = sink.CellStats{N: 40, MeanKmh: 15}
	rep := d.Report(snap)
	if len(rep.Cells) != 1 {
		t.Fatalf("flagged = %+v, want the slowed cell", rep.Cells)
	}
	if z := rep.Cells[0].Z; math.IsInf(z, 0) || math.IsNaN(z) {
		t.Fatalf("z must stay finite on a zero-variance reference, got %g", z)
	}
}
