package mapmatch

import (
	"math"

	"repro/internal/geo"
	"repro/internal/roadnet"
	"repro/internal/trace"
)

// HMMConfig tunes the Viterbi baseline matcher (Newson-Krumm style):
// emission probability falls with point-to-edge distance (GPS noise
// sigma), transition probability falls with the difference between the
// network route distance and the straight-line distance.
type HMMConfig struct {
	// SigmaM is the GPS noise standard deviation (default 6 m).
	SigmaM float64
	// BetaM is the transition tolerance scale (default 50 m).
	BetaM float64
	// MaxCandidateDist and MaxCandidates bound the state space
	// (defaults 60 m, 4).
	MaxCandidateDist float64
	MaxCandidates    int
}

func (c HMMConfig) withDefaults() HMMConfig {
	if c.SigmaM <= 0 {
		c.SigmaM = 6
	}
	if c.BetaM <= 0 {
		c.BetaM = 50
	}
	if c.MaxCandidateDist <= 0 {
		c.MaxCandidateDist = 60
	}
	if c.MaxCandidates <= 0 {
		c.MaxCandidates = 4
	}
	return c
}

// HMMMatcher is the baseline map-matcher used for comparisons with the
// paper's incremental algorithm.
type HMMMatcher struct {
	g   *roadnet.Graph
	rt  *roadnet.Router
	cfg HMMConfig
	inc *Matcher // reused for route assembly
}

// NewHMM builds the baseline matcher over the graph's shared routing
// engine.
func NewHMM(g *roadnet.Graph, cfg HMMConfig) *HMMMatcher {
	return NewHMMRouter(g.Router(), cfg)
}

// NewHMMRouter builds the baseline matcher over an explicit routing
// engine shared with the rest of a pipeline.
func NewHMMRouter(rt *roadnet.Router, cfg HMMConfig) *HMMMatcher {
	return &HMMMatcher{
		g:   rt.Graph(),
		rt:  rt,
		cfg: cfg.withDefaults(),
		inc: NewIncrementalRouter(rt, DefaultConfig()),
	}
}

// Match aligns the points with Viterbi decoding over edge candidates.
func (m *HMMMatcher) Match(points []trace.RoutePoint) (*Result, error) {
	if len(points) == 0 {
		return nil, ErrEmptyInput
	}
	type state struct {
		cand roadnet.EdgeCandidate
		logp float64
		prev int // back-pointer into the previous layer
	}
	var layers [][]state
	var layerIdx []int // input index per layer

	for i := range points {
		cands := m.g.EdgesNear(points[i].Pos, m.cfg.MaxCandidateDist)
		if len(cands) > m.cfg.MaxCandidates {
			cands = cands[:m.cfg.MaxCandidates]
		}
		if len(cands) == 0 {
			continue // skipped point, like the incremental matcher
		}
		layer := make([]state, len(cands))
		for c, cand := range cands {
			layer[c] = state{cand: cand, logp: math.Inf(-1), prev: -1}
		}
		layers = append(layers, layer)
		layerIdx = append(layerIdx, i)
	}
	if len(layers) == 0 {
		return nil, ErrNoCandidate
	}

	// Initial layer: emission only.
	for c := range layers[0] {
		layers[0][c].logp = m.emission(layers[0][c].cand.Distance)
	}
	// Forward pass. Route distances are batched: one bounded Dijkstra
	// per distinct endpoint node of the previous layer's candidates,
	// instead of a point query per candidate pair. The batch runs
	// through the router's pooled search scratch and compact sorted
	// entries, so no per-layer maps are allocated.
	for l := 1; l < len(layers); l++ {
		straight := points[layerIdx[l-1]].Pos.Dist(points[layerIdx[l]].Pos)
		// Routes longer than this contribute a negligible transition
		// probability, so the trees can safely stop there.
		bound := straight + 12*m.cfg.BetaM + 600
		batch := m.rt.NewDistanceBatch(roadnet.DistanceWeight, bound)
		for p := range layers[l-1] {
			e := layers[l-1][p].cand.Edge
			batch.AddSource(e.From)
			batch.AddSource(e.To)
		}
		for c := range layers[l] {
			cur := &layers[l][c]
			em := m.emission(cur.cand.Distance)
			for p := range layers[l-1] {
				prev := &layers[l-1][p]
				if math.IsInf(prev.logp, -1) {
					continue
				}
				tr := m.transition(batch, prev.cand, cur.cand, straight)
				if lp := prev.logp + tr + em; lp > cur.logp {
					cur.logp = lp
					cur.prev = p
				}
			}
			if math.IsInf(cur.logp, -1) {
				// Disconnected from every predecessor: restart here so
				// one bad point cannot sink the whole trace.
				cur.logp = em - 1e3
			}
		}
		batch.Release()
	}
	// Backtrack.
	bestC := 0
	last := len(layers) - 1
	for c := range layers[last] {
		if layers[last][c].logp > layers[last][bestC].logp {
			bestC = c
		}
	}
	choice := make([]int, len(layers))
	choice[last] = bestC
	for l := last; l > 0; l-- {
		p := layers[l][choice[l]].prev
		if p < 0 {
			p = 0
		}
		choice[l-1] = p
	}

	// Build the result in the incremental matcher's shape and reuse its
	// route assembly (shared gap filling).
	res := &Result{Points: make([]MatchedPoint, len(points))}
	for i := range res.Points {
		res.Points[i] = MatchedPoint{Index: i, Skipped: true}
	}
	for l, li := range layerIdx {
		st := layers[l][choice[l]]
		res.Points[li] = MatchedPoint{Index: li, Edge: st.cand.Edge.ID, Proj: st.cand.Proj}
	}
	res.MatchedFraction = float64(len(layers)) / float64(len(points))
	s := m.inc.getScratch()
	m.inc.assembleRoute(res, s)
	m.inc.putScratch(s)
	return res, nil
}

func (m *HMMMatcher) emission(dist float64) float64 {
	z := dist / m.cfg.SigmaM
	return -0.5 * z * z
}

// transition scores moving between two candidates given the straight
// line distance between the observations, reading network distances
// from the precomputed per-layer distance batch.
func (m *HMMMatcher) transition(batch *roadnet.DistanceBatch, a, b roadnet.EdgeCandidate, straight float64) float64 {
	route := m.routeDistance(batch, a, b)
	if math.IsInf(route, 1) {
		return math.Inf(-1)
	}
	return -math.Abs(route-straight) / m.cfg.BetaM
}

// routeDistance approximates the network distance between two candidate
// positions using the batched source-node distance trees.
func (m *HMMMatcher) routeDistance(batch *roadnet.DistanceBatch, a, b roadnet.EdgeCandidate) float64 {
	if a.Edge.ID == b.Edge.ID {
		return math.Abs(a.Proj.Along - b.Proj.Along)
	}
	best := math.Inf(1)
	for _, exitTo := range [2]bool{false, true} {
		exitNode, costA := a.Edge.From, a.Proj.Along
		if exitTo {
			exitNode, costA = a.Edge.To, a.Edge.Length-a.Proj.Along
		}
		for _, enterFrom := range [2]bool{true, false} {
			enterNode, costB := b.Edge.From, b.Proj.Along
			if !enterFrom {
				enterNode, costB = b.Edge.To, b.Edge.Length-b.Proj.Along
			}
			mid, ok := batch.Dist(exitNode, enterNode)
			if !ok {
				continue // beyond the tree bound: negligible probability
			}
			if total := costA + mid + costB; total < best {
				best = total
			}
		}
	}
	return best
}

// matchedPositions is a shared helper for tests: the matched positions
// as a polyline.
func matchedPositions(res *Result) geo.Polyline {
	var out geo.Polyline
	for _, mp := range res.Points {
		if !mp.Skipped {
			out = append(out, mp.Proj.Point)
		}
	}
	return out
}
