package mapmatch_test

import (
	"fmt"
	"time"

	"repro/internal/digiroad"
	"repro/internal/geo"
	"repro/internal/mapmatch"
	"repro/internal/roadnet"
	"repro/internal/trace"
)

func ExampleMatcher_Match() {
	// A small grid; noisy points along the street y=0 snap onto it, and
	// the gap between distant points is filled with a network shortest
	// path.
	db := digiroad.NewDatabase(digiroad.OuluOrigin)
	for _, g := range []geo.Polyline{
		geo.Line(0, 0, 200, 0),
		geo.Line(200, 0, 400, 0),
		geo.Line(200, 0, 200, 200),
		geo.Line(0, 200, 200, 200),
		geo.Line(200, 200, 400, 200),
	} {
		db.AddElement(digiroad.TrafficElement{Geom: g, Class: digiroad.ClassLocal, SpeedLimitKmh: 40})
	}
	graph, _ := roadnet.Build(db)
	m := mapmatch.NewIncremental(graph, mapmatch.DefaultConfig())

	t0 := time.Date(2013, 2, 1, 9, 0, 0, 0, time.UTC)
	pts := []trace.RoutePoint{
		{PointID: 1, TripID: 1, Pos: geo.V(10, 4), Time: t0},
		{PointID: 2, TripID: 1, Pos: geo.V(150, -3), Time: t0.Add(15 * time.Second)},
		// A long silent stretch: the next point is far along the grid.
		{PointID: 3, TripID: 1, Pos: geo.V(390, 197), Time: t0.Add(60 * time.Second)},
	}
	res, err := m.Match(pts)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("matched %.0f%% of points, %d gap(s) filled, route %.0f m\n",
		100*res.MatchedFraction, res.GapsFilled, res.Geometry.Length())
	// Output:
	// matched 100% of points, 1 gap(s) filled, route 580 m
}
