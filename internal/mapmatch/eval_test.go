package mapmatch

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/digiroad"
	"repro/internal/geo"
	"repro/internal/roadnet"
	"repro/internal/trace"
)

func TestEvaluatePerfectMatch(t *testing.T) {
	g := gridGraph(t, 5, -1)
	rng := rand.New(rand.NewSource(1))
	// Truth: a shortest path between two nodes.
	from := g.NearestNode(geo.V(100, 100)).ID
	to := g.NearestNode(geo.V(400, 300)).ID
	path, err := g.ShortestPath(from, to, nil)
	if err != nil {
		t.Fatal(err)
	}
	truth := path.Edges()
	pts := ptsAlong(rng, path.Geometry(), 50, 2)
	m := NewIncremental(g, DefaultConfig())
	res, err := m.Match(pts)
	if err != nil {
		t.Fatal(err)
	}
	ev := Evaluate(g, res, truth)
	if ev.Recall < 0.8 || ev.Precision < 0.8 || ev.F1 < 0.8 {
		t.Fatalf("good trace evaluated poorly: %+v", ev)
	}
	if ev.LengthErrorM > 120 {
		t.Fatalf("length error %f", ev.LengthErrorM)
	}
}

func TestEvaluateWrongMatch(t *testing.T) {
	g := gridGraph(t, 5, -1)
	rng := rand.New(rand.NewSource(2))
	// Match a trace on y=100 but claim the truth was y=400.
	pts := ptsAlong(rng, geo.Line(100, 100, 400, 100), 50, 2)
	m := NewIncremental(g, DefaultConfig())
	res, err := m.Match(pts)
	if err != nil {
		t.Fatal(err)
	}
	// Build the wrong truth.
	from := g.NearestNode(geo.V(100, 400)).ID
	to := g.NearestNode(geo.V(400, 400)).ID
	path, err := g.ShortestPath(from, to, nil)
	if err != nil {
		t.Fatal(err)
	}
	ev := Evaluate(g, res, path.Edges())
	if ev.Precision > 0.3 || ev.Recall > 0.3 {
		t.Fatalf("wrong truth evaluated well: %+v", ev)
	}
}

func TestEvaluateEmpty(t *testing.T) {
	g := gridGraph(t, 2, -1)
	ev := Evaluate(g, &Result{}, nil)
	if ev.Precision != 0 || ev.Recall != 0 || ev.F1 != 0 {
		t.Fatalf("empty evaluation = %+v", ev)
	}
}

func TestMeanEvaluation(t *testing.T) {
	evs := []Evaluation{
		{Precision: 1, Recall: 0.5, F1: 2.0 / 3, LengthErrorM: 10},
		{Precision: 0.5, Recall: 1, F1: 2.0 / 3, LengthErrorM: 30},
	}
	m := MeanEvaluation(evs)
	if m.Precision != 0.75 || m.Recall != 0.75 || m.LengthErrorM != 20 {
		t.Fatalf("mean = %+v", m)
	}
	if z := MeanEvaluation(nil); z != (Evaluation{}) {
		t.Fatalf("empty mean = %+v", z)
	}
}

// TestMatcherQualityComparison is the quantitative matcher comparison
// behind the ablation: on synthetic-city drives, all matchers should be
// accurate, and the direction-hinted incremental matcher must not lose
// to the plain one.
func TestMatcherQualityComparison(t *testing.T) {
	city := digiroad.SynthesizeOulu(digiroad.SynthConfig{Seed: 5})
	g, err := roadnet.Build(city.DB)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(6))
	t0 := time.Date(2013, 2, 1, 9, 0, 0, 0, time.UTC)

	type drive struct {
		truth []roadnet.EdgeID
		pts   []trace.RoutePoint
	}
	var drives []drive
	for len(drives) < 12 {
		from := roadnet.NodeID(rng.Intn(len(g.Nodes)))
		to := roadnet.NodeID(rng.Intn(len(g.Nodes)))
		path, err := g.ShortestPath(from, to, roadnet.TravelTimeWeight)
		if err != nil || path.Length < 1200 || path.Length > 3500 {
			continue
		}
		geom := path.Geometry()
		var pts []trace.RoutePoint
		i := 0
		for d := 0.0; d <= geom.Length(); d += 70 {
			p := geom.PointAt(d)
			pts = append(pts, trace.RoutePoint{
				PointID: i + 1, TripID: int64(len(drives) + 1),
				Pos:  geo.V(p.X+rng.NormFloat64()*4, p.Y+rng.NormFloat64()*4),
				Time: t0.Add(time.Duration(i) * 10 * time.Second),
			})
			i++
		}
		drives = append(drives, drive{truth: path.Edges(), pts: pts})
	}

	score := func(match func([]trace.RoutePoint) (*Result, error)) Evaluation {
		var evs []Evaluation
		for _, d := range drives {
			res, err := match(d.pts)
			if err != nil {
				t.Fatalf("match failed: %v", err)
			}
			evs = append(evs, Evaluate(g, res, d.truth))
		}
		return MeanEvaluation(evs)
	}

	inc := NewIncremental(g, DefaultConfig())
	plainCfg := DefaultConfig()
	plainCfg.UseDirectionHints = false
	plain := NewIncremental(g, plainCfg)
	hmm := NewHMM(g, HMMConfig{})

	evInc := score(inc.Match)
	evPlain := score(plain.Match)
	evHMM := score(hmm.Match)
	t.Logf("incremental+hints: %+v", evInc)
	t.Logf("incremental-plain: %+v", evPlain)
	t.Logf("hmm:               %+v", evHMM)

	for name, ev := range map[string]Evaluation{
		"hints": evInc, "plain": evPlain, "hmm": evHMM,
	} {
		if ev.F1 < 0.7 {
			t.Fatalf("%s matcher F1 %.2f too low", name, ev.F1)
		}
	}
	if evInc.F1+0.03 < evPlain.F1 {
		t.Fatalf("direction hints degraded matching: %.3f vs %.3f", evInc.F1, evPlain.F1)
	}
}

func TestLookaheadDoesNotRegress(t *testing.T) {
	// The look-ahead variant must match the greedy matcher's quality on
	// clean traces (and may improve ambiguous ones).
	city := digiroad.SynthesizeOulu(digiroad.SynthConfig{Seed: 8})
	g, err := roadnet.Build(city.DB)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	t0 := time.Date(2013, 2, 1, 9, 0, 0, 0, time.UTC)

	greedy := NewIncremental(g, DefaultConfig())
	lookCfg := DefaultConfig()
	lookCfg.LookaheadDepth = 2
	look := NewIncremental(g, lookCfg)

	var evG, evL []Evaluation
	for trial := 0; trial < 10; trial++ {
		var path *roadnet.Path
		for {
			from := roadnet.NodeID(rng.Intn(len(g.Nodes)))
			to := roadnet.NodeID(rng.Intn(len(g.Nodes)))
			p, err := g.ShortestPath(from, to, roadnet.TravelTimeWeight)
			if err == nil && p.Length > 1200 && p.Length < 3000 {
				path = p
				break
			}
		}
		geom := path.Geometry()
		var pts []trace.RoutePoint
		i := 0
		for d := 0.0; d <= geom.Length(); d += 80 {
			p := geom.PointAt(d)
			pts = append(pts, trace.RoutePoint{
				PointID: i + 1, TripID: 1,
				Pos:  geo.V(p.X+rng.NormFloat64()*6, p.Y+rng.NormFloat64()*6),
				Time: t0.Add(time.Duration(i) * 10 * time.Second),
			})
			i++
		}
		rg, err := greedy.Match(pts)
		if err != nil {
			t.Fatal(err)
		}
		rl, err := look.Match(pts)
		if err != nil {
			t.Fatal(err)
		}
		evG = append(evG, Evaluate(g, rg, path.Edges()))
		evL = append(evL, Evaluate(g, rl, path.Edges()))
	}
	mg, ml := MeanEvaluation(evG), MeanEvaluation(evL)
	t.Logf("greedy F1 %.3f, lookahead F1 %.3f", mg.F1, ml.F1)
	if ml.F1+0.02 < mg.F1 {
		t.Fatalf("lookahead regressed: %.3f vs %.3f", ml.F1, mg.F1)
	}
}
