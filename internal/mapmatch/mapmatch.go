// Package mapmatch aligns GPS route points onto the road-network graph.
//
// The primary algorithm is the incremental (greedy) matcher of
// Brakatsoulas et al. [25], the paper's choice for its unevenly sampled,
// event-triggered points: each point is matched to the candidate edge
// maximising a combined position/orientation/continuity score, enhanced
// with digital-map information (driving directions) as in the paper.
// When consecutive matched points land on disconnected edges, the gap
// is filled with a network shortest path (the paper uses pgRouting's
// Dijkstra for this).
//
// An HMM (Viterbi) matcher in hmm.go serves as the comparison baseline
// used by the ablation benchmarks.
package mapmatch

import (
	"errors"
	"math"
	"sync"

	"repro/internal/geo"
	"repro/internal/roadnet"
	"repro/internal/trace"
)

// Config tunes the incremental matcher.
type Config struct {
	// MaxCandidateDist bounds the point-to-edge distance for candidate
	// edges (default 60 m).
	MaxCandidateDist float64
	// MaxCandidates bounds the candidate set per point (default 6).
	MaxCandidates int
	// UseDirectionHints enables the map-direction enhancement: heading
	// agreement scoring and one-way legality (default set by
	// DefaultConfig; zero value disables, for the ablation).
	UseDirectionHints bool
	// PositionWeight, HeadingWeight and ContinuityWeight combine the
	// score terms (defaults 1.0, 0.6, 0.8).
	PositionWeight   float64
	HeadingWeight    float64
	ContinuityWeight float64
	// LookaheadDepth makes the greedy choice consider the best
	// continuation over the next LookaheadDepth points (the look-ahead
	// variant of Brakatsoulas et al.). 0 disables; 1-2 are useful.
	LookaheadDepth int
}

// DefaultConfig returns the paper-configured matcher settings.
func DefaultConfig() Config {
	return Config{
		MaxCandidateDist:  60,
		MaxCandidates:     6,
		UseDirectionHints: true,
		PositionWeight:    1.0,
		HeadingWeight:     0.6,
		ContinuityWeight:  0.8,
	}
}

func (c Config) withDefaults() Config {
	if c.MaxCandidateDist <= 0 {
		c.MaxCandidateDist = 60
	}
	if c.MaxCandidates <= 0 {
		c.MaxCandidates = 6
	}
	if c.PositionWeight <= 0 {
		c.PositionWeight = 1.0
	}
	if c.HeadingWeight <= 0 {
		c.HeadingWeight = 0.6
	}
	if c.ContinuityWeight <= 0 {
		c.ContinuityWeight = 0.8
	}
	return c
}

// MatchedPoint is one input point's assignment.
type MatchedPoint struct {
	Index   int  // index into the input slice
	Skipped bool // true when no candidate was within range
	Edge    roadnet.EdgeID
	Proj    geo.ProjectResult // position on the edge geometry
}

// Result is a completed match.
type Result struct {
	Points []MatchedPoint
	// Route is the connected directed edge sequence, including
	// gap-filling shortest paths.
	Route []roadnet.EdgeID
	// Geometry is the matched travel geometry from the first to the
	// last matched position.
	Geometry geo.Polyline
	// Elements lists the traversed traffic-element IDs in route order
	// (duplicates removed), ready for attribute fetching.
	Elements []int
	// MatchedFraction is the share of input points that found a
	// candidate.
	MatchedFraction float64
	// GapsFilled counts point transitions that needed a shortest-path
	// fill rather than edge adjacency.
	GapsFilled int
}

// Matcher is a reusable incremental map-matcher over one graph. It is
// safe for concurrent use: per-match state is checked out of a pool and
// the shared Router is itself concurrency-safe.
type Matcher struct {
	g       *roadnet.Graph
	rt      *roadnet.Router
	cfg     Config
	scratch sync.Pool // of *matchScratch
}

// matchScratch is the reusable per-match state: one candidate-query
// buffer per lookahead level (the level-0 buffer must survive while
// deeper levels query), the matched-position sequence, the
// element-dedup set, and the geometry/edge assembly buffers.
type matchScratch struct {
	near  []roadnet.NearScratch
	seq   []matchPos
	seen  map[int]bool
	piece geo.Polyline
	edges []roadnet.EdgeID
}

type matchPos struct {
	edge  roadnet.EdgeID
	along float64
	pt    geo.XY
}

func (m *Matcher) getScratch() *matchScratch {
	if s, ok := m.scratch.Get().(*matchScratch); ok {
		return s
	}
	return &matchScratch{
		near: make([]roadnet.NearScratch, m.cfg.LookaheadDepth+1),
		seen: make(map[int]bool),
	}
}

func (m *Matcher) putScratch(s *matchScratch) {
	s.seq = s.seq[:0]
	s.piece = s.piece[:0]
	s.edges = s.edges[:0]
	clear(s.seen)
	m.scratch.Put(s)
}

// NewIncremental builds a matcher over the graph's shared routing
// engine.
func NewIncremental(g *roadnet.Graph, cfg Config) *Matcher {
	return NewIncrementalRouter(g.Router(), cfg)
}

// NewIncrementalRouter builds a matcher over an explicit routing
// engine, so a pipeline can share one Router (scratch pools and path
// cache) across all of its stages and workers.
func NewIncrementalRouter(rt *roadnet.Router, cfg Config) *Matcher {
	return &Matcher{g: rt.Graph(), rt: rt, cfg: cfg.withDefaults()}
}

// ErrNoCandidate is returned when no input point has any candidate
// edge within range — the trace is nowhere near the network. It is a
// permanent (non-retryable) condition: the same trace re-matched
// against the same map fails the same way.
var ErrNoCandidate = errors.New("mapmatch: no point matched the network")

// ErrNoMatch is the historical name of ErrNoCandidate.
//
// Deprecated: test with errors.Is(err, ErrNoCandidate).
var ErrNoMatch = ErrNoCandidate

// ErrEmptyInput is returned for a zero-point input. Permanent.
var ErrEmptyInput = errors.New("mapmatch: empty input")

// Match aligns the points (in true order) onto the network.
func (m *Matcher) Match(points []trace.RoutePoint) (*Result, error) {
	if len(points) == 0 {
		return nil, ErrEmptyInput
	}
	s := m.getScratch()
	defer m.putScratch(s)
	res := &Result{Points: make([]MatchedPoint, 0, len(points))}
	matched := 0

	var prev MatchedPoint
	hasPrev := false
	var prevPointPos geo.XY
	for i := range points {
		mp := m.matchOne(points, i, prev, hasPrev, prevPointPos, s)
		res.Points = append(res.Points, mp)
		if !mp.Skipped {
			matched++
			prev = mp
			hasPrev = true
			prevPointPos = points[i].Pos
		}
	}
	res.MatchedFraction = float64(matched) / float64(len(points))
	if matched == 0 {
		return nil, ErrNoCandidate
	}
	m.assembleRoute(res, s)
	return res, nil
}

// matchOne scores the candidate edges for point i and picks the best,
// optionally looking ahead at the next points' best continuations.
func (m *Matcher) matchOne(points []trace.RoutePoint, i int, prev MatchedPoint, hasPrev bool, prevPos geo.XY, s *matchScratch) MatchedPoint {
	cands := m.candidates(points[i].Pos, &s.near[0])
	if len(cands) == 0 {
		return MatchedPoint{Index: i, Skipped: true}
	}
	var prevEdge roadnet.EdgeID
	if hasPrev {
		prevEdge = prev.Edge
	}
	best := math.Inf(-1)
	found := false
	var bestCand roadnet.EdgeCandidate
	for _, c := range cands {
		score := m.scoreCandidate(points, i, c, prevEdge, hasPrev)
		if math.IsInf(score, -1) {
			continue
		}
		if m.cfg.LookaheadDepth > 0 && i+1 < len(points) {
			score += 0.6 * m.continuation(points, i+1, c.Edge.ID, m.cfg.LookaheadDepth, s)
		}
		if score > best {
			best = score
			bestCand = c
			found = true
		}
	}
	if !found {
		return MatchedPoint{Index: i, Skipped: true}
	}
	return MatchedPoint{Index: i, Edge: bestCand.Edge.ID, Proj: bestCand.Proj}
}

// candidates returns the bounded candidate set for a position. The
// result aliases ns and is valid until its next reuse.
func (m *Matcher) candidates(p geo.XY, ns *roadnet.NearScratch) []roadnet.EdgeCandidate {
	cands := m.g.EdgesNearInto(p, m.cfg.MaxCandidateDist, ns)
	if len(cands) > m.cfg.MaxCandidates {
		cands = cands[:m.cfg.MaxCandidates]
	}
	return cands
}

// scoreCandidate evaluates one candidate for point i: position,
// optional map-direction agreement, and continuity with the previous
// edge. Returns -Inf for candidates the map rules out.
func (m *Matcher) scoreCandidate(points []trace.RoutePoint, i int, c roadnet.EdgeCandidate, prevEdge roadnet.EdgeID, hasPrev bool) float64 {
	score := m.cfg.PositionWeight * (1 - c.Distance/m.cfg.MaxCandidateDist)

	if m.cfg.UseDirectionHints {
		if heading, hasHeading := movementHeading(points, i); hasHeading {
			edgeBearing := c.Edge.Geom.BearingAt(c.Proj.Along)
			diff := geo.AngleDiff(heading, edgeBearing)
			legalForward := c.Edge.CanTraverse(true)
			legalBackward := c.Edge.CanTraverse(false)
			// Orientation agreement in the legal travel direction(s).
			agree := math.Inf(1)
			if legalForward {
				agree = diff
			}
			if legalBackward {
				if d := 180 - diff; d < agree {
					agree = d
				}
			}
			if agree > 100 {
				// The map says no legal travel direction of this edge
				// comes close to the observed movement (e.g. driving
				// against a one-way): reject the candidate outright.
				return math.Inf(-1)
			}
			score += m.cfg.HeadingWeight * (1 - agree/90)
		}
	}
	if hasPrev {
		switch {
		case c.Edge.ID == prevEdge:
			score += m.cfg.ContinuityWeight
		case m.adjacent(prevEdge, c.Edge.ID):
			score += m.cfg.ContinuityWeight / 2
		}
	}
	return score
}

// continuation returns the best achievable score for point i given the
// previous edge, recursing up to depth points ahead with a decaying
// weight. Each recursion level queries through its own scratch buffer
// (s.near[level]) so the caller's candidate slice stays intact.
func (m *Matcher) continuation(points []trace.RoutePoint, i int, prevEdge roadnet.EdgeID, depth int, s *matchScratch) float64 {
	level := m.cfg.LookaheadDepth - depth + 1
	cands := m.candidates(points[i].Pos, &s.near[level])
	if len(cands) == 0 {
		return 0
	}
	best := math.Inf(-1)
	for _, c := range cands {
		score := m.scoreCandidate(points, i, c, prevEdge, true)
		if math.IsInf(score, -1) {
			continue
		}
		if depth > 1 && i+1 < len(points) {
			score += 0.6 * m.continuation(points, i+1, c.Edge.ID, depth-1, s)
		}
		if score > best {
			best = score
		}
	}
	if math.IsInf(best, -1) {
		return 0
	}
	return best
}

// movementHeading estimates the travel bearing at point i from its
// neighbours; ok is false when the trace is locally stationary.
func movementHeading(points []trace.RoutePoint, i int) (float64, bool) {
	lo, hi := i, i
	if lo > 0 {
		lo--
	}
	if hi < len(points)-1 {
		hi++
	}
	if points[lo].Pos.Dist(points[hi].Pos) < 5 {
		return 0, false
	}
	return geo.Bearing(points[lo].Pos, points[hi].Pos), true
}

// adjacent reports whether two edges share a node.
func (m *Matcher) adjacent(a, b roadnet.EdgeID) bool {
	ea, eb := &m.g.Edges[a], &m.g.Edges[b]
	return ea.From == eb.From || ea.From == eb.To || ea.To == eb.From || ea.To == eb.To
}

// assembleRoute connects consecutive matched positions into one
// continuous network route, filling disconnected gaps with shortest
// paths.
func (m *Matcher) assembleRoute(res *Result, s *matchScratch) {
	seq := s.seq[:0]
	for _, mp := range res.Points {
		if mp.Skipped {
			continue
		}
		seq = append(seq, matchPos{edge: mp.Edge, along: mp.Proj.Along, pt: mp.Proj.Point})
	}
	s.seq = seq
	if len(seq) == 0 {
		return
	}
	res.Route = make([]roadnet.EdgeID, 0, len(seq))
	res.Geometry = append(make(geo.Polyline, 0, 2*len(seq)), seq[0].pt)
	appendEdge := func(id roadnet.EdgeID) {
		if n := len(res.Route); n == 0 || res.Route[n-1] != id {
			res.Route = append(res.Route, id)
		}
	}
	appendEdge(seq[0].edge)

	for k := 1; k < len(seq); k++ {
		a, b := seq[k-1], seq[k]
		if a.edge == b.edge {
			// Same edge: walk along its geometry between the two
			// projections, staged through the reusable piece buffer.
			g := m.g.Edges[a.edge].Geom
			lo, hi := a.along, b.along
			if lo <= hi {
				s.piece = g.AppendSlice(s.piece[:0], lo, hi)
			} else {
				s.piece = g.AppendSliceReversed(s.piece[:0], hi, lo)
			}
			res.Geometry = appendChain(res.Geometry, s.piece)
			continue
		}
		edges, piece, filled := m.connect(a.edge, a.along, b.edge, b.along, s)
		if filled {
			res.GapsFilled++
		}
		for _, id := range edges {
			appendEdge(id)
		}
		res.Geometry = appendChain(res.Geometry, piece)
	}

	// Traversed traffic elements, deduplicated in route order.
	seen := s.seen
	for _, id := range res.Route {
		for _, el := range m.g.Edges[id].Elements {
			if !seen[el] {
				seen[el] = true
				res.Elements = append(res.Elements, el)
			}
		}
	}
}

// connect routes from a position on edge A to a position on edge B,
// trying all exit/entry node combinations and charging the partial
// edge distances. filled is true when the edges are not adjacent
// (a genuine gap that required Dijkstra). The returned slices are
// views into s's reusable buffers, valid until the next connect call.
func (m *Matcher) connect(ea roadnet.EdgeID, alongA float64, eb roadnet.EdgeID, alongB float64, s *matchScratch) ([]roadnet.EdgeID, geo.Polyline, bool) {
	A, B := &m.g.Edges[ea], &m.g.Edges[eb]
	filled := !m.adjacent(ea, eb)

	// First pass: pick the cheapest exit/entry combination on cost
	// alone (the partial-edge charges need no geometry), then build the
	// edge list and geometry once for the winner.
	bestCost := math.Inf(1)
	var bestExitTo, bestEnterFrom bool
	var bestPath *roadnet.Path

	for _, exitTo := range [2]bool{false, true} { // exit via A.From or A.To
		var exitNode roadnet.NodeID
		var costA float64
		if exitTo {
			if !A.CanTraverse(true) {
				continue
			}
			exitNode = A.To
			costA = A.Length - alongA
		} else {
			if !A.CanTraverse(false) {
				continue
			}
			exitNode = A.From
			costA = alongA
		}
		for _, enterFrom := range [2]bool{true, false} { // enter via B.From or B.To
			var enterNode roadnet.NodeID
			var costB float64
			if enterFrom {
				if !B.CanTraverse(true) {
					continue
				}
				enterNode = B.From
				costB = alongB
			} else {
				if !B.CanTraverse(false) {
					continue
				}
				enterNode = B.To
				costB = B.Length - alongB
			}
			path, err := m.rt.ShortestPath(exitNode, enterNode, roadnet.DistanceWeight)
			if err != nil {
				continue
			}
			total := costA + path.Cost + costB
			if total < bestCost {
				bestCost = total
				bestExitTo, bestEnterFrom, bestPath = exitTo, enterFrom, path
			}
		}
	}
	if math.IsInf(bestCost, 1) {
		// Unreachable (disconnected component): jump straight across.
		s.edges = append(s.edges[:0], ea, eb)
		s.piece = append(s.piece[:0], B.Geom.PointAt(alongB))
		return s.edges, s.piece, filled
	}

	// Assemble gA + path geometry + gB in the reusable piece buffer,
	// applying appendChain's joint rule at each boundary.
	piece := s.piece[:0]
	if bestExitTo {
		piece = A.Geom.AppendSlice(piece, alongA, A.Length)
	} else {
		piece = A.Geom.AppendSliceReversed(piece, 0, alongA)
	}
	mark := len(piece)
	piece = dropJoint(bestPath.AppendGeometry(piece), mark)
	mark = len(piece)
	if bestEnterFrom {
		piece = B.Geom.AppendSlice(piece, 0, alongB)
	} else {
		piece = B.Geom.AppendSliceReversed(piece, alongB, B.Length)
	}
	piece = dropJoint(piece, mark)
	s.piece = piece

	s.edges = append(s.edges[:0], ea)
	s.edges = bestPath.AppendEdges(s.edges)
	s.edges = append(s.edges, eb)
	return s.edges, s.piece, filled
}

// appendChain appends piece to chain, dropping a duplicated joint
// vertex.
func appendChain(chain, piece geo.Polyline) geo.Polyline {
	for len(piece) > 0 && len(chain) > 0 && chain[len(chain)-1].Dist(piece[0]) < 1e-6 {
		piece = piece[1:]
	}
	return append(chain, piece...)
}

// dropJoint applies appendChain's joint rule in place: it removes the
// leading vertices of piece[mark:] that duplicate (within 1e-6) the
// chain tail piece[mark-1], as if piece[mark:] had been appended with
// appendChain.
func dropJoint(piece geo.Polyline, mark int) geo.Polyline {
	if mark == 0 {
		return piece
	}
	tail := piece[mark-1]
	k := 0
	for mark+k < len(piece) && tail.Dist(piece[mark+k]) < 1e-6 {
		k++
	}
	if k > 0 {
		piece = append(piece[:mark], piece[mark+k:]...)
	}
	return piece
}
