package mapmatch

import (
	"repro/internal/geo"
	"repro/internal/roadnet"
)

// Evaluation compares a matched route against a ground-truth edge
// sequence (available for simulated drives).
type Evaluation struct {
	// Precision is the share of matched edges that are in the truth.
	Precision float64
	// Recall is the share of truth edges that were matched.
	Recall float64
	// F1 is the harmonic mean of precision and recall.
	F1 float64
	// LengthErrorM is |matched length − truth length| in metres.
	LengthErrorM float64
	// HausdorffM is the symmetric Hausdorff distance between the
	// matched geometry and the truth geometry (20 m sampling).
	HausdorffM float64
}

// Evaluate scores a match result against the true edge sequence.
func Evaluate(g *roadnet.Graph, res *Result, truth []roadnet.EdgeID) Evaluation {
	truthSet := make(map[roadnet.EdgeID]bool, len(truth))
	var truthLen float64
	for _, id := range truth {
		if !truthSet[id] {
			truthSet[id] = true
			truthLen += g.Edges[id].Length
		}
	}
	matchedSet := make(map[roadnet.EdgeID]bool, len(res.Route))
	for _, id := range res.Route {
		matchedSet[id] = true
	}
	var hit int
	for id := range matchedSet {
		if truthSet[id] {
			hit++
		}
	}
	ev := Evaluation{}
	if len(matchedSet) > 0 {
		ev.Precision = float64(hit) / float64(len(matchedSet))
	}
	if len(truthSet) > 0 {
		ev.Recall = float64(hit) / float64(len(truthSet))
	}
	if ev.Precision+ev.Recall > 0 {
		ev.F1 = 2 * ev.Precision * ev.Recall / (ev.Precision + ev.Recall)
	}
	d := res.Geometry.Length() - truthLen
	if d < 0 {
		d = -d
	}
	ev.LengthErrorM = d
	if truthGeom := edgesGeometry(g, truth); len(truthGeom) > 0 && len(res.Geometry) > 0 {
		ev.HausdorffM = geo.Hausdorff(res.Geometry, truthGeom, 20)
	}
	return ev
}

// edgesGeometry concatenates edge geometries for distance comparison;
// orientation does not matter for the Hausdorff metric.
func edgesGeometry(g *roadnet.Graph, edges []roadnet.EdgeID) geo.Polyline {
	var out geo.Polyline
	for _, id := range edges {
		out = append(out, g.Edges[id].Geom...)
	}
	return out
}

// MeanEvaluation averages a batch of evaluations.
func MeanEvaluation(evs []Evaluation) Evaluation {
	if len(evs) == 0 {
		return Evaluation{}
	}
	var out Evaluation
	for _, e := range evs {
		out.Precision += e.Precision
		out.Recall += e.Recall
		out.F1 += e.F1
		out.LengthErrorM += e.LengthErrorM
		out.HausdorffM += e.HausdorffM
	}
	n := float64(len(evs))
	out.Precision /= n
	out.Recall /= n
	out.F1 /= n
	out.LengthErrorM /= n
	out.HausdorffM /= n
	return out
}
