package mapmatch

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"repro/internal/digiroad"
	"repro/internal/geo"
	"repro/internal/roadnet"
	"repro/internal/trace"
)

var t0 = time.Date(2012, 10, 1, 8, 0, 0, 0, time.UTC)

// gridGraph builds an n x n block grid of two-way 100 m streets.
func gridGraph(t *testing.T, n int, oneWayRow int) *roadnet.Graph {
	t.Helper()
	db := digiroad.NewDatabase(digiroad.OuluOrigin)
	id := 1
	add := func(flow digiroad.FlowDirection, coords ...float64) {
		_, err := db.AddElement(digiroad.TrafficElement{
			ID: id, Geom: geo.Line(coords...),
			Class: digiroad.ClassLocal, Flow: flow, SpeedLimitKmh: 40,
		})
		if err != nil {
			t.Fatal(err)
		}
		id++
	}
	for i := 0; i <= n; i++ {
		for j := 0; j < n; j++ {
			add(digiroad.FlowBoth, float64(i*100), float64(j*100), float64(i*100), float64(j*100+100))
			flow := digiroad.FlowBoth
			if i == oneWayRow {
				flow = digiroad.FlowForward // eastbound only
			}
			add(flow, float64(j*100), float64(i*100), float64(j*100+100), float64(i*100))
		}
	}
	g, err := roadnet.Build(db)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// ptsAlong samples points along a polyline with the given spacing and
// noise.
func ptsAlong(rng *rand.Rand, pl geo.Polyline, spacing, noise float64) []trace.RoutePoint {
	var out []trace.RoutePoint
	total := pl.Length()
	i := 0
	for d := 0.0; d <= total; d += spacing {
		p := pl.PointAt(d)
		out = append(out, trace.RoutePoint{
			PointID: i + 1, TripID: 1,
			Pos: geo.XY{
				X: p.X + rng.NormFloat64()*noise,
				Y: p.Y + rng.NormFloat64()*noise,
			},
			Time: t0.Add(time.Duration(i) * 15 * time.Second),
		})
		i++
	}
	return out
}

func TestIncrementalMatchesStraightRoute(t *testing.T) {
	g := gridGraph(t, 5, -1)
	rng := rand.New(rand.NewSource(1))
	truth := geo.Line(100, 100, 400, 100) // along y=100
	pts := ptsAlong(rng, truth, 60, 3)
	m := NewIncremental(g, DefaultConfig())
	res, err := m.Match(pts)
	if err != nil {
		t.Fatalf("Match: %v", err)
	}
	if res.MatchedFraction != 1 {
		t.Fatalf("matched fraction = %f", res.MatchedFraction)
	}
	// Every matched position must be on the y=100 street.
	for _, mp := range res.Points {
		if math.Abs(mp.Proj.Point.Y-100) > 1e-6 {
			t.Fatalf("point %d matched off-street: %v", mp.Index, mp.Proj.Point)
		}
	}
	// Route geometry length close to the truth.
	if gl := res.Geometry.Length(); math.Abs(gl-truth.Length()) > 30 {
		t.Fatalf("geometry length %f, want ~%f", gl, truth.Length())
	}
}

func TestIncrementalTurnsCorner(t *testing.T) {
	g := gridGraph(t, 5, -1)
	rng := rand.New(rand.NewSource(2))
	truth := geo.Line(100, 100, 300, 100, 300, 300)
	pts := ptsAlong(rng, truth, 50, 3)
	m := NewIncremental(g, DefaultConfig())
	res, err := m.Match(pts)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Geometry.Length()-truth.Length()) > 50 {
		t.Fatalf("geometry length %f, want ~%f", res.Geometry.Length(), truth.Length())
	}
	// The route must pass through the corner node area.
	corner := geo.V(300, 100)
	if res.Geometry.DistanceTo(corner) > 5 {
		t.Fatalf("route misses the corner: %f m away", res.Geometry.DistanceTo(corner))
	}
}

func TestGapFillingUsesShortestPath(t *testing.T) {
	g := gridGraph(t, 5, -1)
	// Two distant points only: the matcher must bridge 400 m of network
	// with Dijkstra (the paper's pgRouting step).
	pts := []trace.RoutePoint{
		{PointID: 1, TripID: 1, Pos: geo.V(105, 98), Time: t0},
		{PointID: 2, TripID: 1, Pos: geo.V(405, 305), Time: t0.Add(time.Minute)},
	}
	m := NewIncremental(g, DefaultConfig())
	res, err := m.Match(pts)
	if err != nil {
		t.Fatal(err)
	}
	if res.GapsFilled == 0 {
		t.Fatal("gap not filled")
	}
	want := 300.0 + 200 + 5 // manhattan between projections, roughly
	if math.Abs(res.Geometry.Length()-want) > 40 {
		t.Fatalf("filled geometry %f, want ~%f", res.Geometry.Length(), want)
	}
	// Route edges must be connected: each consecutive pair shares a node.
	for i := 1; i < len(res.Route); i++ {
		a, b := &g.Edges[res.Route[i-1]], &g.Edges[res.Route[i]]
		if a.From != b.From && a.From != b.To && a.To != b.From && a.To != b.To {
			t.Fatalf("route edges %d,%d not adjacent", res.Route[i-1], res.Route[i])
		}
	}
}

func TestDirectionHintsPreferLegalEdge(t *testing.T) {
	// Row y=200 (i=2) is one-way eastbound. A westbound trace along
	// y=205 should NOT match the one-way when hints are on; the
	// parallel two-way street at y=300 or y=100 is legal.
	g := gridGraph(t, 5, 2)
	rng := rand.New(rand.NewSource(3))
	truth := geo.Line(400, 220, 100, 220) // westbound, 20 m north of one-way
	pts := ptsAlong(rng, truth, 60, 2)

	with := NewIncremental(g, DefaultConfig())
	resWith, err := with.Match(pts)
	if err != nil {
		t.Fatal(err)
	}
	offCfg := DefaultConfig()
	offCfg.UseDirectionHints = false
	offCfg.HeadingWeight = 1e-9 // effectively zero, withDefaults keeps it
	without := NewIncremental(g, offCfg)
	resWithout, err := without.Match(pts)
	if err != nil {
		t.Fatal(err)
	}
	// Without hints, pure proximity picks the one-way street (y=200).
	onOneWay := func(res *Result) int {
		n := 0
		for _, mp := range res.Points {
			if !mp.Skipped && math.Abs(mp.Proj.Point.Y-200) < 1 {
				n++
			}
		}
		return n
	}
	if got := onOneWay(resWithout); got == 0 {
		t.Fatalf("sanity: hint-less matcher should sit on the one-way, got %d", got)
	}
	if got := onOneWay(resWith); got != 0 {
		t.Fatalf("direction hints still matched %d points onto the illegal one-way", got)
	}
}

func TestMatchSkipsFarPoints(t *testing.T) {
	g := gridGraph(t, 3, -1)
	pts := []trace.RoutePoint{
		{PointID: 1, TripID: 1, Pos: geo.V(100, 102), Time: t0},
		{PointID: 2, TripID: 1, Pos: geo.V(5000, 5000), Time: t0.Add(15 * time.Second)},
		{PointID: 3, TripID: 1, Pos: geo.V(200, 102), Time: t0.Add(30 * time.Second)},
	}
	m := NewIncremental(g, DefaultConfig())
	res, err := m.Match(pts)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Points[1].Skipped {
		t.Fatal("far point not skipped")
	}
	if res.MatchedFraction < 0.6 || res.MatchedFraction > 0.7 {
		t.Fatalf("matched fraction = %f, want 2/3", res.MatchedFraction)
	}
}

func TestMatchAllFar(t *testing.T) {
	g := gridGraph(t, 3, -1)
	pts := []trace.RoutePoint{
		{PointID: 1, TripID: 1, Pos: geo.V(9000, 9000), Time: t0},
	}
	m := NewIncremental(g, DefaultConfig())
	if _, err := m.Match(pts); err == nil {
		t.Fatal("unmatched trace must error")
	}
	if _, err := m.Match(nil); err == nil {
		t.Fatal("empty trace must error")
	}
}

func TestMatchElementsTraversed(t *testing.T) {
	g := gridGraph(t, 5, -1)
	rng := rand.New(rand.NewSource(4))
	pts := ptsAlong(rng, geo.Line(100, 100, 400, 100), 50, 2)
	m := NewIncremental(g, DefaultConfig())
	res, err := m.Match(pts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Elements) == 0 {
		t.Fatal("no traversed elements reported")
	}
	seen := map[int]bool{}
	for _, el := range res.Elements {
		if seen[el] {
			t.Fatalf("duplicate element %d", el)
		}
		seen[el] = true
	}
}

func TestHMMMatchesStraightRoute(t *testing.T) {
	g := gridGraph(t, 5, -1)
	rng := rand.New(rand.NewSource(5))
	truth := geo.Line(100, 100, 400, 100)
	pts := ptsAlong(rng, truth, 60, 3)
	m := NewHMM(g, HMMConfig{})
	res, err := m.Match(pts)
	if err != nil {
		t.Fatal(err)
	}
	for _, mp := range res.Points {
		if mp.Skipped {
			continue
		}
		// Corner points may legitimately sit on an intersecting street;
		// everything must stay within GPS range of the true route.
		if truth.DistanceTo(mp.Proj.Point) > 12 {
			t.Fatalf("HMM matched off-route: %v", mp.Proj.Point)
		}
	}
	if math.Abs(res.Geometry.Length()-truth.Length()) > 30 {
		t.Fatalf("HMM geometry length %f", res.Geometry.Length())
	}
}

func TestHMMPrefersConnectedRouteOverNearest(t *testing.T) {
	// A noisy point sits slightly nearer a parallel street; the HMM's
	// transition model should keep the trajectory on the connected
	// route.
	g := gridGraph(t, 5, -1)
	pts := []trace.RoutePoint{
		{PointID: 1, TripID: 1, Pos: geo.V(110, 101), Time: t0},
		{PointID: 2, TripID: 1, Pos: geo.V(170, 99), Time: t0.Add(10 * time.Second)},
		// Drifted point: 30 m from the perpendicular street at x=200
		// but 35 m from the true street; the transition model should
		// still keep the trajectory on y=100.
		{PointID: 3, TripID: 1, Pos: geo.V(230, 135), Time: t0.Add(20 * time.Second)},
		{PointID: 4, TripID: 1, Pos: geo.V(290, 101), Time: t0.Add(30 * time.Second)},
		{PointID: 5, TripID: 1, Pos: geo.V(350, 99), Time: t0.Add(40 * time.Second)},
	}
	m := NewHMM(g, HMMConfig{SigmaM: 25, BetaM: 20})
	res, err := m.Match(pts)
	if err != nil {
		t.Fatal(err)
	}
	// No detour onto the perpendicular street: geometry stays ~240 m.
	if res.Geometry.Length() > 300 {
		t.Fatalf("HMM took a detour: %f m", res.Geometry.Length())
	}
}

func TestHMMEmptyAndFar(t *testing.T) {
	g := gridGraph(t, 3, -1)
	m := NewHMM(g, HMMConfig{})
	if _, err := m.Match(nil); err == nil {
		t.Fatal("empty input must error")
	}
	pts := []trace.RoutePoint{{PointID: 1, TripID: 1, Pos: geo.V(9000, 9000), Time: t0}}
	if _, err := m.Match(pts); err == nil {
		t.Fatal("all-far input must error")
	}
}

func TestMatchersAgreeOnCleanTraces(t *testing.T) {
	g := gridGraph(t, 6, -1)
	rng := rand.New(rand.NewSource(6))
	inc := NewIncremental(g, DefaultConfig())
	hmm := NewHMM(g, HMMConfig{})
	for trial := 0; trial < 10; trial++ {
		// L-shaped truth with moderate noise.
		x := float64(100 * (1 + rng.Intn(3)))
		y := float64(100 * (1 + rng.Intn(3)))
		truth := geo.Line(x, 100, x, y+100, x+200, y+100)
		pts := ptsAlong(rng, truth, 55, 2.5)
		a, errA := inc.Match(pts)
		b, errB := hmm.Match(pts)
		if errA != nil || errB != nil {
			t.Fatalf("trial %d: %v / %v", trial, errA, errB)
		}
		da := math.Abs(a.Geometry.Length() - truth.Length())
		db := math.Abs(b.Geometry.Length() - truth.Length())
		if da > 60 || db > 60 {
			t.Fatalf("trial %d: inc err %f, hmm err %f", trial, da, db)
		}
	}
}

func TestMatchedPositionsHelper(t *testing.T) {
	g := gridGraph(t, 3, -1)
	pts := []trace.RoutePoint{
		{PointID: 1, TripID: 1, Pos: geo.V(100, 101), Time: t0},
		{PointID: 2, TripID: 1, Pos: geo.V(9000, 9000), Time: t0.Add(time.Second)},
		{PointID: 3, TripID: 1, Pos: geo.V(150, 99), Time: t0.Add(2 * time.Second)},
	}
	m := NewIncremental(g, DefaultConfig())
	res, err := m.Match(pts)
	if err != nil {
		t.Fatal(err)
	}
	if got := matchedPositions(res); len(got) != 2 {
		t.Fatalf("matchedPositions = %d points", len(got))
	}
}

// TestMatchJitterInvariance is the metamorphic check behind the
// checker's map-matching invariants: GPS noise well inside a street's
// capture radius must not change the *edge sequence* a trace matches
// to. Several noise realisations of the same ground-truth drive —
// including the zero-noise one — must all produce the same route, with
// every point matched, on both matchers.
func TestMatchJitterInvariance(t *testing.T) {
	g := gridGraph(t, 5, -1)
	// Start and end mid-edge: projections at graph nodes are
	// legitimately ambiguous between the two incident edges.
	truth := geo.Line(120, 100, 300, 100, 300, 300, 380, 300)

	type matcher interface {
		Match([]trace.RoutePoint) (*Result, error)
	}
	impls := map[string]matcher{
		"incremental": NewIncremental(g, DefaultConfig()),
		"hmm":         NewHMM(g, HMMConfig{}),
	}
	for name, m := range impls {
		var ref []roadnet.EdgeID
		for seed := int64(0); seed < 6; seed++ {
			rng := rand.New(rand.NewSource(seed))
			noise := 2.5
			if seed == 0 {
				noise = 0 // exact on-street reference realisation
			}
			// Spacing 37 never lands a zero-noise sample exactly on a
			// graph node, where edge assignment legitimately ties.
			pts := ptsAlong(rng, truth, 37, noise)
			res, err := m.Match(pts)
			if err != nil {
				t.Fatalf("%s seed %d: %v", name, seed, err)
			}
			if res.MatchedFraction != 1 {
				t.Fatalf("%s seed %d: matched fraction %f", name, seed, res.MatchedFraction)
			}
			if seed == 0 {
				ref = res.Route
				if len(ref) == 0 {
					t.Fatalf("%s: reference run produced an empty route", name)
				}
				continue
			}
			if len(res.Route) != len(ref) {
				t.Fatalf("%s seed %d: route length %d, reference %d",
					name, seed, len(res.Route), len(ref))
			}
			for i := range ref {
				if res.Route[i] != ref[i] {
					t.Fatalf("%s seed %d: route diverged at %d: %v vs %v",
						name, seed, i, res.Route[i], ref[i])
				}
			}
		}
	}
}
