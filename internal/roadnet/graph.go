// Package roadnet reconstructs the road-network graph from Digiroad-style
// traffic elements and provides shortest-path routing over it.
//
// Following the paper's map-preparation step (§IV-A), element endpoints
// shared by at least three elements are junctions (graph vertices),
// endpoints shared by exactly two elements are intermediate points, and
// chains of elements between junctions are merged into single edges. The
// resulting table of junction pairs with their contributing element
// arrays is the paper's Table 1.
package roadnet

import (
	"math"
	"sort"
	"sync"

	"repro/internal/digiroad"
	"repro/internal/geo"
)

// NodeID identifies a graph vertex.
type NodeID int

// EdgeID identifies a graph edge.
type EdgeID int

// Node is a graph vertex: a junction (degree >= 3), a dead end
// (degree 1), or a cycle break point.
type Node struct {
	ID    NodeID
	Pos   geo.XY
	Edges []EdgeID // incident edges, ascending
}

// Degree returns the number of incident edges.
func (n *Node) Degree() int { return len(n.Edges) }

// Edge is a merged chain of traffic elements between two nodes. Geom is
// oriented from From to To; Flow is expressed relative to that
// orientation.
type Edge struct {
	ID       EdgeID
	From, To NodeID
	Geom     geo.Polyline
	Elements []int // contributing traffic element IDs, in chain order
	Length   float64
	// SpeedLimitKmh is the most restrictive limit over the chain.
	SpeedLimitKmh float64
	Class         digiroad.FunctionalClass
	Flow          digiroad.FlowDirection
	Name          string
}

// CanTraverse reports whether the edge may be driven in the given
// orientation (forward = From->To).
func (e *Edge) CanTraverse(forward bool) bool {
	switch e.Flow {
	case digiroad.FlowForward:
		return forward
	case digiroad.FlowBackward:
		return !forward
	default:
		return true
	}
}

// Graph is the reconstructed road network.
type Graph struct {
	Nodes []Node
	Edges []Edge

	edgeIndex *geo.RTree
	nodeIndex *geo.RTree

	// Shared default routing engine, built lazily by Router().
	routerOnce sync.Once
	router     *Router
}

// quant quantises a coordinate to centimetres so that endpoints that
// are meant to coincide do, despite floating-point noise.
func quant(p geo.XY) [2]int64 {
	return [2]int64{int64(math.Round(p.X * 100)), int64(math.Round(p.Y * 100))}
}

// endpointKey returns the quantised keys of an element's two endpoints.
func endpointKey(e *digiroad.TrafficElement) ([2]int64, [2]int64) {
	return quant(e.Geom[0]), quant(e.Geom[len(e.Geom)-1])
}

// Build reconstructs the graph from every traffic element in db.
// Elements of class ClassPedestrian are skipped: they are not drivable.
func Build(db *digiroad.Database) (*Graph, error) {
	var elements []*digiroad.TrafficElement
	for _, e := range db.Elements() {
		if e.Class == digiroad.ClassPedestrian {
			continue
		}
		elements = append(elements, e)
	}
	if len(elements) == 0 {
		return nil, ErrNoDrivableElements
	}

	// 1. Classify endpoints by how many elements touch them.
	degree := map[[2]int64]int{}
	pos := map[[2]int64]geo.XY{}
	for _, e := range elements {
		a, b := endpointKey(e)
		degree[a]++
		degree[b]++
		pos[a] = e.Geom[0]
		pos[b] = e.Geom[len(e.Geom)-1]
		if a == b {
			// Self-loop element: its endpoint is always a vertex.
			degree[a]++
		}
	}

	g := &Graph{}
	nodeOf := map[[2]int64]NodeID{}
	addNode := func(key [2]int64) NodeID {
		if id, ok := nodeOf[key]; ok {
			return id
		}
		id := NodeID(len(g.Nodes))
		g.Nodes = append(g.Nodes, Node{ID: id, Pos: pos[key]})
		nodeOf[key] = id
		return id
	}
	// Junctions (>=3) and dead ends (1) become nodes; intermediate
	// points (exactly 2) are merged away. Deterministic order: sort keys.
	keys := make([][2]int64, 0, len(degree))
	for k := range degree {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	for _, k := range keys {
		if degree[k] != 2 {
			addNode(k)
		}
	}

	// 2. Adjacency: endpoint key -> elements touching it.
	touch := map[[2]int64][]*digiroad.TrafficElement{}
	for _, e := range elements {
		a, b := endpointKey(e)
		touch[a] = append(touch[a], e)
		if b != a {
			touch[b] = append(touch[b], e)
		}
	}

	// 3. Walk chains from every node endpoint.
	usedElem := map[int]bool{}
	for _, k := range keys {
		if degree[k] != 2 {
			g.walkChainsFrom(k, nodeOf, touch, usedElem, addNode)
		}
	}
	// 4. Remaining unused elements form pure cycles of intermediate
	// points; break each cycle at its smallest endpoint key.
	for _, e := range elements {
		if usedElem[e.ID] {
			continue
		}
		a, _ := endpointKey(e)
		addNode(a)
		g.walkChainsFrom(a, nodeOf, touch, usedElem, addNode)
	}

	sortEdgeLists(g)
	g.buildIndexes()
	return g, nil
}

// walkChainsFrom starts one chain walk along every unused element
// incident to the endpoint key `start`, merging degree-2 endpoints until
// another node is reached.
func (g *Graph) walkChainsFrom(
	start [2]int64,
	nodeOf map[[2]int64]NodeID,
	touch map[[2]int64][]*digiroad.TrafficElement,
	usedElem map[int]bool,
	addNode func([2]int64) NodeID,
) {
	for _, first := range touch[start] {
		if usedElem[first.ID] {
			continue
		}
		fromID := nodeOf[start]
		geom := geo.Polyline{}
		var elemIDs []int
		limit := math.Inf(1)
		class := digiroad.ClassPedestrian // numerically largest; min below
		flow := digiroad.FlowBoth
		flowConflict := false
		name := first.Name

		cur := first
		at := start
		for {
			usedElem[cur.ID] = true
			a, b := endpointKey(cur)
			elemGeom := cur.Geom
			elemFlow := cur.Flow
			next := b
			if at == b && a != b {
				// Traverse the element against its digitization.
				elemGeom = elemGeom.Reverse()
				elemFlow = reverseFlow(elemFlow)
				next = a
			}
			if len(geom) > 0 {
				elemGeom = elemGeom[1:] // drop the duplicated joint vertex
			}
			geom = append(geom, elemGeom...)
			elemIDs = append(elemIDs, cur.ID)
			if l := cur.MinLimit(); l > 0 && l < limit {
				limit = l
			}
			if cur.Class < class {
				class = cur.Class
			}
			flow, flowConflict = mergeFlow(flow, elemFlow, flowConflict)

			if _, isNode := nodeOf[next]; isNode {
				toID := nodeOf[next]
				g.addEdge(fromID, toID, geom, elemIDs, limit, class, flow, flowConflict, name)
				break
			}
			// Intermediate point: continue along the single other element.
			var follow *digiroad.TrafficElement
			for _, cand := range touch[next] {
				if !usedElem[cand.ID] {
					follow = cand
					break
				}
			}
			if follow == nil {
				// Dangling chain end that was not classified as a node
				// (can happen on duplicated elements); promote it.
				toID := addNode(next)
				g.addEdge(fromID, toID, geom, elemIDs, limit, class, flow, flowConflict, name)
				break
			}
			at = next
			cur = follow
		}
	}
}

func (g *Graph) addEdge(
	from, to NodeID,
	geom geo.Polyline,
	elemIDs []int,
	limit float64,
	class digiroad.FunctionalClass,
	flow digiroad.FlowDirection,
	flowConflict bool,
	name string,
) {
	if math.IsInf(limit, 1) {
		limit = 50 // national default inside built-up areas
	}
	if flowConflict {
		// Conflicting one-way elements in one chain: data error; fall
		// back to two-way rather than making the edge impassable.
		flow = digiroad.FlowBoth
	}
	id := EdgeID(len(g.Edges))
	g.Edges = append(g.Edges, Edge{
		ID:            id,
		From:          from,
		To:            to,
		Geom:          geom,
		Elements:      elemIDs,
		Length:        geom.Length(),
		SpeedLimitKmh: limit,
		Class:         class,
		Flow:          flow,
		Name:          name,
	})
	g.Nodes[from].Edges = append(g.Nodes[from].Edges, id)
	if to != from {
		g.Nodes[to].Edges = append(g.Nodes[to].Edges, id)
	}
}

func reverseFlow(f digiroad.FlowDirection) digiroad.FlowDirection {
	switch f {
	case digiroad.FlowForward:
		return digiroad.FlowBackward
	case digiroad.FlowBackward:
		return digiroad.FlowForward
	default:
		return digiroad.FlowBoth
	}
}

// mergeFlow combines the chain's accumulated flow with the next
// element's flow (both expressed in chain orientation).
func mergeFlow(acc, next digiroad.FlowDirection, conflict bool) (digiroad.FlowDirection, bool) {
	if conflict {
		return acc, true
	}
	switch {
	case acc == next:
		return acc, false
	case acc == digiroad.FlowBoth:
		return next, false
	case next == digiroad.FlowBoth:
		return acc, false
	default:
		return acc, true
	}
}

func sortEdgeLists(g *Graph) {
	for i := range g.Nodes {
		es := g.Nodes[i].Edges
		sort.Slice(es, func(a, b int) bool { return es[a] < es[b] })
	}
}

func (g *Graph) buildIndexes() {
	edgeItems := make([]geo.RTreeItem, len(g.Edges))
	for i := range g.Edges {
		edgeItems[i] = geo.RTreeItem{Rect: g.Edges[i].Geom.Bounds(), ID: i}
	}
	g.edgeIndex = geo.BuildRTree(edgeItems, 0)

	nodeItems := make([]geo.RTreeItem, len(g.Nodes))
	for i := range g.Nodes {
		nodeItems[i] = geo.RTreeItem{Rect: geo.RectFromPoints(g.Nodes[i].Pos), ID: i}
	}
	g.nodeIndex = geo.BuildRTree(nodeItems, 0)
}

// Junctions returns the nodes with degree >= 3 — the paper's junction
// definition used both for the graph and for the Table 4/Fig 6 junction
// counts.
func (g *Graph) Junctions() []*Node {
	var out []*Node
	for i := range g.Nodes {
		if g.Nodes[i].Degree() >= 3 {
			out = append(out, &g.Nodes[i])
		}
	}
	return out
}

// JunctionsIn returns the junction nodes inside r.
func (g *Graph) JunctionsIn(r geo.Rect) []*Node {
	var out []*Node
	for _, n := range g.Junctions() {
		if r.Contains(n.Pos) {
			out = append(out, n)
		}
	}
	return out
}

// EdgeCandidate is an edge found near a query point.
type EdgeCandidate struct {
	Edge     *Edge
	Proj     geo.ProjectResult
	Distance float64
}

// NearScratch holds the reusable buffers for EdgesNearInto. The zero
// value is ready to use; one scratch serves one goroutine.
type NearScratch struct {
	ids   []int
	cands []EdgeCandidate
}

// EdgesNear returns edges passing within radius of p, nearest first.
func (g *Graph) EdgesNear(p geo.XY, radius float64) []EdgeCandidate {
	return g.EdgesNearInto(p, radius, &NearScratch{})
}

// EdgesNearInto is EdgesNear with caller-owned buffers: the returned
// slice aliases s and is valid until the next call with the same
// scratch. The hot path (map matching queries the index a few times
// per route point) runs allocation-free with a warm scratch.
func (g *Graph) EdgesNearInto(p geo.XY, radius float64, s *NearScratch) []EdgeCandidate {
	query := geo.RectFromPoints(p).Expand(radius)
	s.ids = g.edgeIndex.Search(query, s.ids[:0])
	out := s.cands[:0]
	for _, id := range s.ids {
		e := &g.Edges[id]
		proj := e.Geom.Project(p)
		if proj.Distance <= radius {
			out = append(out, EdgeCandidate{Edge: e, Proj: proj, Distance: proj.Distance})
		}
	}
	// Insertion sort by distance: candidate sets are tiny, and unlike
	// sort.Slice this neither allocates nor depends on an unstable
	// algorithm's tie order (ties keep index order).
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].Distance < out[j-1].Distance; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	s.cands = out
	return out
}

// NearestEdge returns the closest edge to p within maxDist. ok is false
// when none qualifies.
func (g *Graph) NearestEdge(p geo.XY, maxDist float64) (EdgeCandidate, bool) {
	// Probe with a growing radius so the common near-road case stays
	// cheap.
	for r := 25.0; r <= maxDist*2; r *= 2 {
		if r > maxDist {
			r = maxDist
		}
		if cands := g.EdgesNear(p, r); len(cands) > 0 {
			return cands[0], true
		}
		if r == maxDist {
			break
		}
	}
	return EdgeCandidate{}, false
}

// NearestNode returns the node closest to p.
func (g *Graph) NearestNode(p geo.XY) *Node {
	res := g.nodeIndex.Nearest(p, 1, 0)
	if len(res) == 0 {
		return nil
	}
	return &g.Nodes[res[0].ID]
}

// Other returns the node at the opposite end of edge e from n.
func (e *Edge) Other(n NodeID) NodeID {
	if e.From == n {
		return e.To
	}
	return e.From
}

// JunctionPair is one row of the paper's Table 1: two junction
// geometries with the array of traffic elements forming the edge
// between them.
type JunctionPair struct {
	Junction1 geo.XY
	Elements  []int
	Junction2 geo.XY
}

// JunctionPairs returns the Table 1 rows for every edge, ordered by
// edge ID.
func (g *Graph) JunctionPairs() []JunctionPair {
	out := make([]JunctionPair, len(g.Edges))
	for i := range g.Edges {
		e := &g.Edges[i]
		out[i] = JunctionPair{
			Junction1: g.Nodes[e.From].Pos,
			Elements:  append([]int(nil), e.Elements...),
			Junction2: g.Nodes[e.To].Pos,
		}
	}
	return out
}
