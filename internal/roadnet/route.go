package roadnet

import (
	"errors"

	"repro/internal/geo"
)

// WeightFunc scores one directed traversal of an edge. Returning +Inf
// forbids the traversal; the function is never called for orientations
// the edge's flow direction already forbids.
type WeightFunc func(e *Edge, forward bool) float64

// DistanceWeight routes by length.
func DistanceWeight(e *Edge, forward bool) float64 { return e.Length }

// TravelTimeWeight routes by free-flow travel time in seconds.
func TravelTimeWeight(e *Edge, forward bool) float64 {
	return e.Length / (e.SpeedLimitKmh / 3.6)
}

// PathStep is one directed edge traversal in a path.
type PathStep struct {
	Edge    *Edge
	Forward bool // true when traversed From -> To
}

// Path is a routing result.
type Path struct {
	Steps  []PathStep
	Nodes  []NodeID // visited nodes, len(Steps)+1
	Cost   float64  // total weight
	Length float64  // total metres
}

// Geometry concatenates the step geometries into one chain.
func (p *Path) Geometry() geo.Polyline {
	var out geo.Polyline
	for _, s := range p.Steps {
		g := s.Edge.Geom
		if !s.Forward {
			g = g.Reverse()
		}
		if len(out) > 0 && len(g) > 0 {
			g = g[1:]
		}
		out = append(out, g...)
	}
	if len(out) == 0 && len(p.Nodes) > 0 {
		return nil
	}
	return out
}

// AppendGeometry appends exactly the vertices Geometry returns to dst,
// without allocating intermediates (no per-step Reverse copies). Safe
// on cached paths: the step geometries are only read.
func (p *Path) AppendGeometry(dst geo.Polyline) geo.Polyline {
	start := len(dst)
	for _, s := range p.Steps {
		g := s.Edge.Geom
		if s.Forward {
			if len(dst) > start && len(g) > 0 {
				g = g[1:]
			}
			dst = append(dst, g...)
		} else {
			i := len(g) - 1
			if len(dst) > start && len(g) > 0 {
				i-- // skip the joint vertex (reversed head = forward tail)
			}
			for ; i >= 0; i-- {
				dst = append(dst, g[i])
			}
		}
	}
	return dst
}

// Edges returns the traversed edge IDs in order.
func (p *Path) Edges() []EdgeID {
	return p.AppendEdges(make([]EdgeID, 0, len(p.Steps)))
}

// AppendEdges appends the traversed edge IDs to dst.
func (p *Path) AppendEdges(dst []EdgeID) []EdgeID {
	for _, s := range p.Steps {
		dst = append(dst, s.Edge.ID)
	}
	return dst
}

// ErrNoPath is returned when the destination is unreachable. It is a
// permanent condition for a given graph: retrying the same query
// cannot succeed.
var ErrNoPath = errors.New("roadnet: no path")

// ErrNoDrivableElements is returned by Build when the database holds
// no drivable traffic elements to reconstruct a graph from. Permanent.
var ErrNoDrivableElements = errors.New("roadnet: no drivable traffic elements")

// ErrNodeOutOfRange marks a routing query naming a node id outside the
// graph; callers passing computed ids test for it with errors.Is.
// Permanent.
var ErrNodeOutOfRange = errors.New("roadnet: node out of range")

type pqItem struct {
	node NodeID
	cost float64
}

type priorityQueue []pqItem

func (pq priorityQueue) Len() int            { return len(pq) }
func (pq priorityQueue) Less(i, j int) bool  { return pq[i].cost < pq[j].cost }
func (pq priorityQueue) Swap(i, j int)       { pq[i], pq[j] = pq[j], pq[i] }
func (pq *priorityQueue) Push(x interface{}) { *pq = append(*pq, x.(pqItem)) }
func (pq *priorityQueue) Pop() interface{} {
	old := *pq
	n := len(old)
	it := old[n-1]
	*pq = old[:n-1]
	return it
}

// Router returns the graph's shared routing engine, built lazily on
// first use. Code assembling a pipeline should construct its own
// engine with NewRouter (to control cache sizing) and pass it down;
// this accessor backs the compatibility wrappers below and standalone
// use.
func (g *Graph) Router() *Router {
	g.routerOnce.Do(func() {
		g.router = NewRouter(g, RouterOptions{})
	})
	return g.router
}

// ShortestPath routes from one node to another under the given weight
// (nil selects DistanceWeight). Flow directions are respected. Thin
// compatibility wrapper over the shared Router.
func (g *Graph) ShortestPath(from, to NodeID, weight WeightFunc) (*Path, error) {
	return g.Router().ShortestPath(from, to, weight)
}

// ShortestPathAStar runs A* with an admissible straight-line heuristic
// derived from the weight of a representative edge: for DistanceWeight
// semantics use heuristicSpeed <= 1 (metres per cost unit); for
// TravelTimeWeight pass the network's maximum speed in m/s. Thin
// compatibility wrapper over the shared Router.
func (g *Graph) ShortestPathAStar(from, to NodeID, weight WeightFunc, heuristicSpeed float64) (*Path, error) {
	return g.Router().ShortestPathAStar(from, to, weight, heuristicSpeed)
}

// MaxSpeedKmh returns the highest speed limit in the network, used to
// keep the A* travel-time heuristic admissible.
func (g *Graph) MaxSpeedKmh() float64 {
	max := 0.0
	for i := range g.Edges {
		if g.Edges[i].SpeedLimitKmh > max {
			max = g.Edges[i].SpeedLimitKmh
		}
	}
	return max
}

// ShortestDistances runs bounded Dijkstra from one node and returns the
// cost to every node reachable within maxCost (inclusive). It is the
// one-to-many primitive used by the HMM matcher's transition model;
// hot callers should prefer Router.NewDistanceBatch, which reuses the
// search scratch and avoids the per-call map. Thin compatibility
// wrapper over the shared Router.
func (g *Graph) ShortestDistances(from NodeID, weight WeightFunc, maxCost float64) map[NodeID]float64 {
	return g.Router().ShortestDistances(from, weight, maxCost)
}
