package roadnet

import (
	"container/heap"
	"fmt"
	"math"

	"repro/internal/geo"
)

// WeightFunc scores one directed traversal of an edge. Returning +Inf
// forbids the traversal; the function is never called for orientations
// the edge's flow direction already forbids.
type WeightFunc func(e *Edge, forward bool) float64

// DistanceWeight routes by length.
func DistanceWeight(e *Edge, forward bool) float64 { return e.Length }

// TravelTimeWeight routes by free-flow travel time in seconds.
func TravelTimeWeight(e *Edge, forward bool) float64 {
	return e.Length / (e.SpeedLimitKmh / 3.6)
}

// PathStep is one directed edge traversal in a path.
type PathStep struct {
	Edge    *Edge
	Forward bool // true when traversed From -> To
}

// Path is a routing result.
type Path struct {
	Steps  []PathStep
	Nodes  []NodeID // visited nodes, len(Steps)+1
	Cost   float64  // total weight
	Length float64  // total metres
}

// Geometry concatenates the step geometries into one chain.
func (p *Path) Geometry() geo.Polyline {
	var out geo.Polyline
	for _, s := range p.Steps {
		g := s.Edge.Geom
		if !s.Forward {
			g = g.Reverse()
		}
		if len(out) > 0 && len(g) > 0 {
			g = g[1:]
		}
		out = append(out, g...)
	}
	if len(out) == 0 && len(p.Nodes) > 0 {
		return nil
	}
	return out
}

// Edges returns the traversed edge IDs in order.
func (p *Path) Edges() []EdgeID {
	out := make([]EdgeID, len(p.Steps))
	for i, s := range p.Steps {
		out[i] = s.Edge.ID
	}
	return out
}

// ErrNoPath is returned when the destination is unreachable.
var ErrNoPath = fmt.Errorf("roadnet: no path")

type pqItem struct {
	node NodeID
	cost float64
}

type priorityQueue []pqItem

func (pq priorityQueue) Len() int            { return len(pq) }
func (pq priorityQueue) Less(i, j int) bool  { return pq[i].cost < pq[j].cost }
func (pq priorityQueue) Swap(i, j int)       { pq[i], pq[j] = pq[j], pq[i] }
func (pq *priorityQueue) Push(x interface{}) { *pq = append(*pq, x.(pqItem)) }
func (pq *priorityQueue) Pop() interface{} {
	old := *pq
	n := len(old)
	it := old[n-1]
	*pq = old[:n-1]
	return it
}

// ShortestPath runs Dijkstra from one node to another under the given
// weight (nil selects DistanceWeight). Flow directions are respected.
func (g *Graph) ShortestPath(from, to NodeID, weight WeightFunc) (*Path, error) {
	return g.shortest(from, to, weight, nil)
}

// ShortestPathAStar runs A* with an admissible straight-line heuristic
// derived from the weight of a representative edge: for DistanceWeight
// semantics use heuristicSpeed <= 1 (metres per cost unit); for
// TravelTimeWeight pass the network's maximum speed in m/s.
func (g *Graph) ShortestPathAStar(from, to NodeID, weight WeightFunc, heuristicSpeed float64) (*Path, error) {
	if heuristicSpeed <= 0 {
		heuristicSpeed = 1
	}
	target := g.Nodes[to].Pos
	h := func(n NodeID) float64 {
		return g.Nodes[n].Pos.Dist(target) / heuristicSpeed
	}
	return g.shortest(from, to, weight, h)
}

func (g *Graph) shortest(from, to NodeID, weight WeightFunc, h func(NodeID) float64) (*Path, error) {
	if int(from) < 0 || int(from) >= len(g.Nodes) || int(to) < 0 || int(to) >= len(g.Nodes) {
		return nil, fmt.Errorf("roadnet: node out of range (from=%d, to=%d, n=%d)", from, to, len(g.Nodes))
	}
	if weight == nil {
		weight = DistanceWeight
	}
	dist := make(map[NodeID]float64, 64)
	prevEdge := make(map[NodeID]EdgeID, 64)
	prevNode := make(map[NodeID]NodeID, 64)
	done := make(map[NodeID]bool, 64)
	dist[from] = 0

	pq := &priorityQueue{}
	push := func(n NodeID, cost float64) {
		est := cost
		if h != nil {
			est += h(n)
		}
		heap.Push(pq, pqItem{node: n, cost: est})
	}
	push(from, 0)

	for pq.Len() > 0 {
		it := heap.Pop(pq).(pqItem)
		u := it.node
		if done[u] {
			continue
		}
		done[u] = true
		if u == to {
			break
		}
		du := dist[u]
		for _, eid := range g.Nodes[u].Edges {
			e := &g.Edges[eid]
			forward := e.From == u
			if e.From == e.To {
				continue // self-loops never shorten a path
			}
			if !e.CanTraverse(forward) {
				continue
			}
			w := weight(e, forward)
			if math.IsInf(w, 1) || w < 0 {
				continue
			}
			v := e.Other(u)
			if dv, seen := dist[v]; !seen || du+w < dv {
				dist[v] = du + w
				prevEdge[v] = eid
				prevNode[v] = u
				push(v, du+w)
			}
		}
	}
	if !done[to] && from != to {
		if _, seen := dist[to]; !seen {
			return nil, ErrNoPath
		}
	}

	// Reconstruct.
	path := &Path{Cost: dist[to]}
	at := to
	for at != from {
		eid := prevEdge[at]
		e := &g.Edges[eid]
		u := prevNode[at]
		path.Steps = append(path.Steps, PathStep{Edge: e, Forward: e.From == u})
		path.Length += e.Length
		at = u
	}
	// Reverse steps into travel order.
	for i, j := 0, len(path.Steps)-1; i < j; i, j = i+1, j-1 {
		path.Steps[i], path.Steps[j] = path.Steps[j], path.Steps[i]
	}
	path.Nodes = make([]NodeID, 0, len(path.Steps)+1)
	path.Nodes = append(path.Nodes, from)
	cur := from
	for _, s := range path.Steps {
		cur = s.Edge.Other(cur)
		path.Nodes = append(path.Nodes, cur)
	}
	return path, nil
}

// MaxSpeedKmh returns the highest speed limit in the network, used to
// keep the A* travel-time heuristic admissible.
func (g *Graph) MaxSpeedKmh() float64 {
	max := 0.0
	for i := range g.Edges {
		if g.Edges[i].SpeedLimitKmh > max {
			max = g.Edges[i].SpeedLimitKmh
		}
	}
	return max
}

// ShortestDistances runs bounded Dijkstra from one node and returns the
// cost to every node reachable within maxCost (inclusive). It is the
// one-to-many primitive used by the HMM matcher's transition model,
// where many candidate pairs share source nodes.
func (g *Graph) ShortestDistances(from NodeID, weight WeightFunc, maxCost float64) map[NodeID]float64 {
	if int(from) < 0 || int(from) >= len(g.Nodes) {
		return nil
	}
	if weight == nil {
		weight = DistanceWeight
	}
	if maxCost <= 0 {
		maxCost = math.Inf(1)
	}
	dist := map[NodeID]float64{from: 0}
	done := map[NodeID]bool{}
	pq := &priorityQueue{{node: from, cost: 0}}
	for pq.Len() > 0 {
		it := heap.Pop(pq).(pqItem)
		u := it.node
		if done[u] {
			continue
		}
		done[u] = true
		du := dist[u]
		if du > maxCost {
			delete(dist, u)
			continue
		}
		for _, eid := range g.Nodes[u].Edges {
			e := &g.Edges[eid]
			if e.From == e.To {
				continue
			}
			forward := e.From == u
			if !e.CanTraverse(forward) {
				continue
			}
			w := weight(e, forward)
			if math.IsInf(w, 1) || w < 0 {
				continue
			}
			v := e.Other(u)
			if nd := du + w; nd <= maxCost {
				if dv, seen := dist[v]; !seen || nd < dv {
					dist[v] = nd
					heap.Push(pq, pqItem{node: v, cost: nd})
				}
			}
		}
	}
	return dist
}
