package roadnet

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/digiroad"
)

// NetworkStats summarises a built road graph, useful as a sanity
// diagnostic before running the pipeline on a map (real Digiroad
// extracts can contain disconnected islands from clipping).
type NetworkStats struct {
	Nodes          int
	Edges          int
	Junctions      int // degree >= 3
	DeadEnds       int // degree 1
	TotalLengthM   float64
	LengthByClass  map[digiroad.FunctionalClass]float64
	OneWayEdges    int
	Components     int
	LargestCompPct float64 // share of nodes in the largest component
}

// Stats computes the summary.
func (g *Graph) Stats() NetworkStats {
	s := NetworkStats{
		Nodes:         len(g.Nodes),
		Edges:         len(g.Edges),
		LengthByClass: map[digiroad.FunctionalClass]float64{},
	}
	for i := range g.Nodes {
		switch d := g.Nodes[i].Degree(); {
		case d >= 3:
			s.Junctions++
		case d == 1:
			s.DeadEnds++
		}
	}
	for i := range g.Edges {
		e := &g.Edges[i]
		s.TotalLengthM += e.Length
		s.LengthByClass[e.Class] += e.Length
		if e.Flow != digiroad.FlowBoth {
			s.OneWayEdges++
		}
	}
	comps := g.Components()
	s.Components = len(comps)
	if len(comps) > 0 && len(g.Nodes) > 0 {
		s.LargestCompPct = 100 * float64(len(comps[0])) / float64(len(g.Nodes))
	}
	return s
}

// Components returns the connected components as node ID lists, largest
// first (flow directions are ignored: a one-way street still connects
// its endpoints).
func (g *Graph) Components() [][]NodeID {
	seen := make([]bool, len(g.Nodes))
	var comps [][]NodeID
	for start := range g.Nodes {
		if seen[start] {
			continue
		}
		var comp []NodeID
		stack := []NodeID{NodeID(start)}
		seen[start] = true
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			comp = append(comp, u)
			for _, eid := range g.Nodes[u].Edges {
				v := g.Edges[eid].Other(u)
				if !seen[v] {
					seen[v] = true
					stack = append(stack, v)
				}
			}
		}
		comps = append(comps, comp)
	}
	sort.Slice(comps, func(i, j int) bool { return len(comps[i]) > len(comps[j]) })
	return comps
}

// String renders the stats compactly.
func (s NetworkStats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d nodes (%d junctions, %d dead ends), %d edges (%d one-way), %.1f km",
		s.Nodes, s.Junctions, s.DeadEnds, s.Edges, s.OneWayEdges, s.TotalLengthM/1000)
	fmt.Fprintf(&b, ", %d component(s), largest %.1f%%", s.Components, s.LargestCompPct)
	return b.String()
}
