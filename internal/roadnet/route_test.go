package roadnet

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/digiroad"
	"repro/internal/geo"
)

// gridDB builds an n x n block grid of two-way 100 m streets.
func gridDB(t *testing.T, n int) *digiroad.Database {
	t.Helper()
	db := digiroad.NewDatabase(digiroad.OuluOrigin)
	id := 1
	add := func(coords ...float64) {
		if _, err := db.AddElement(el(id, 40, digiroad.FlowBoth, coords...)); err != nil {
			t.Fatal(err)
		}
		id++
	}
	for i := 0; i <= n; i++ {
		for j := 0; j < n; j++ {
			add(float64(i*100), float64(j*100), float64(i*100), float64(j*100+100))
			add(float64(j*100), float64(i*100), float64(j*100+100), float64(i*100))
		}
	}
	return db
}

func nodeAt(t *testing.T, g *Graph, p geo.XY) NodeID {
	t.Helper()
	n := g.NearestNode(p)
	if n == nil || n.Pos.Dist(p) > 1 {
		t.Fatalf("no node at %v", p)
	}
	return n.ID
}

func TestShortestPathManhattanDistance(t *testing.T) {
	g, err := Build(gridDB(t, 5))
	if err != nil {
		t.Fatal(err)
	}
	from := nodeAt(t, g, geo.V(100, 100))
	to := nodeAt(t, g, geo.V(400, 300))
	p, err := g.ShortestPath(from, to, nil)
	if err != nil {
		t.Fatalf("ShortestPath: %v", err)
	}
	if !almostEq(p.Length, 500, 1e-9) || !almostEq(p.Cost, 500, 1e-9) {
		t.Fatalf("path length = %f cost = %f, want 500", p.Length, p.Cost)
	}
	if len(p.Nodes) != len(p.Steps)+1 {
		t.Fatalf("nodes/steps mismatch: %d vs %d", len(p.Nodes), len(p.Steps))
	}
	geom := p.Geometry()
	if !almostEq(geom.Length(), 500, 1e-9) {
		t.Fatalf("geometry length = %f", geom.Length())
	}
	// Geometry must run from origin to destination.
	if geom[0].Dist(geo.V(100, 100)) > 1e-9 || geom[len(geom)-1].Dist(geo.V(400, 300)) > 1e-9 {
		t.Fatalf("geometry endpoints: %v .. %v", geom[0], geom[len(geom)-1])
	}
}

func TestShortestPathSelf(t *testing.T) {
	g, err := Build(gridDB(t, 3))
	if err != nil {
		t.Fatal(err)
	}
	from := nodeAt(t, g, geo.V(100, 100))
	p, err := g.ShortestPath(from, from, nil)
	if err != nil {
		t.Fatalf("self path: %v", err)
	}
	if len(p.Steps) != 0 || p.Length != 0 {
		t.Fatalf("self path = %+v", p)
	}
}

func TestShortestPathNoRoute(t *testing.T) {
	// Two disconnected components.
	db := buildDB(t, []digiroad.TrafficElement{
		el(1, 40, digiroad.FlowBoth, 0, 0, 100, 0),
		el(2, 40, digiroad.FlowBoth, 1000, 0, 1100, 0),
	})
	g, err := Build(db)
	if err != nil {
		t.Fatal(err)
	}
	from := nodeAt(t, g, geo.V(0, 0))
	to := nodeAt(t, g, geo.V(1100, 0))
	if _, err := g.ShortestPath(from, to, nil); !errors.Is(err, ErrNoPath) {
		t.Fatalf("err = %v, want ErrNoPath", err)
	}
}

func TestShortestPathOutOfRange(t *testing.T) {
	g, err := Build(gridDB(t, 2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.ShortestPath(NodeID(-1), 0, nil); err == nil {
		t.Fatal("negative node accepted")
	}
	if _, err := g.ShortestPath(0, NodeID(10000), nil); err == nil {
		t.Fatal("huge node accepted")
	}
}

func TestShortestPathRespectsOneWay(t *testing.T) {
	// Triangle where the direct hypotenuse A->B is one-way B->A only,
	// forcing the long way round for A->B.
	db := buildDB(t, []digiroad.TrafficElement{
		el(1, 40, digiroad.FlowBackward, 0, 0, 100, 0), // A->B geometry, flow backward (B->A only)
		el(2, 40, digiroad.FlowBoth, 0, 0, 0, 80),
		el(3, 40, digiroad.FlowBoth, 0, 80, 100, 0),
		// Stubs so A and B are junctions rather than merged cycle points.
		el(4, 40, digiroad.FlowBoth, 0, 0, -50, 0),
		el(5, 40, digiroad.FlowBoth, 100, 0, 150, 0),
	})
	g, err := Build(db)
	if err != nil {
		t.Fatal(err)
	}
	a := nodeAt(t, g, geo.V(0, 0))
	b := nodeAt(t, g, geo.V(100, 0))

	pab, err := g.ShortestPath(a, b, nil)
	if err != nil {
		t.Fatal(err)
	}
	if pab.Length < 150 {
		t.Fatalf("A->B must detour, got %d steps, length %f", len(pab.Steps), pab.Length)
	}
	pba, err := g.ShortestPath(b, a, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(pba.Length, 100, 1e-9) {
		t.Fatalf("B->A must use the one-way, got %d steps, length %f", len(pba.Steps), pba.Length)
	}
}

func TestTravelTimeWeightPrefersFastRoad(t *testing.T) {
	// Two parallel routes: short slow street vs slightly longer fast one.
	db := buildDB(t, []digiroad.TrafficElement{
		el(1, 30, digiroad.FlowBoth, 0, 0, 300, 0),     // direct, 30 km/h
		el(2, 80, digiroad.FlowBoth, 0, 0, 150, 120),   // fast detour leg 1
		el(3, 80, digiroad.FlowBoth, 150, 120, 300, 0), // fast detour leg 2
		// Stubs so the route endpoints are junctions.
		el(4, 40, digiroad.FlowBoth, 0, 0, -50, 0),
		el(5, 40, digiroad.FlowBoth, 300, 0, 350, 0),
	})
	g, err := Build(db)
	if err != nil {
		t.Fatal(err)
	}
	a := nodeAt(t, g, geo.V(0, 0))
	b := nodeAt(t, g, geo.V(300, 0))

	byDist, err := g.ShortestPath(a, b, DistanceWeight)
	if err != nil {
		t.Fatal(err)
	}
	if len(byDist.Steps) != 1 {
		t.Fatalf("distance routing should take the direct street")
	}
	byTime, err := g.ShortestPath(a, b, TravelTimeWeight)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(byTime.Length, geo.Line(0, 0, 150, 120, 300, 0).Length(), 1e-6) {
		t.Fatalf("time routing should take the fast detour, got length %f", byTime.Length)
	}
}

func TestAStarMatchesDijkstra(t *testing.T) {
	g, err := Build(gridDB(t, 8))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	maxSpeed := g.MaxSpeedKmh() / 3.6
	for trial := 0; trial < 40; trial++ {
		from := NodeID(rng.Intn(len(g.Nodes)))
		to := NodeID(rng.Intn(len(g.Nodes)))
		d, errD := g.ShortestPath(from, to, TravelTimeWeight)
		a, errA := g.ShortestPathAStar(from, to, TravelTimeWeight, maxSpeed)
		if (errD == nil) != (errA == nil) {
			t.Fatalf("trial %d: error mismatch %v vs %v", trial, errD, errA)
		}
		if errD != nil {
			continue
		}
		if !almostEq(d.Cost, a.Cost, 1e-6) {
			t.Fatalf("trial %d: dijkstra %f vs A* %f", trial, d.Cost, a.Cost)
		}
	}
}

func TestWeightFuncCanForbidEdges(t *testing.T) {
	g, err := Build(gridDB(t, 3))
	if err != nil {
		t.Fatal(err)
	}
	from := nodeAt(t, g, geo.V(100, 100))
	to := nodeAt(t, g, geo.V(200, 100))
	// Forbid everything: no path.
	_, err = g.ShortestPath(from, to, func(e *Edge, forward bool) float64 {
		return -1
	})
	if !errors.Is(err, ErrNoPath) {
		t.Fatalf("err = %v, want ErrNoPath", err)
	}
}

func TestPathEdges(t *testing.T) {
	g, err := Build(gridDB(t, 4))
	if err != nil {
		t.Fatal(err)
	}
	from := nodeAt(t, g, geo.V(100, 100))
	to := nodeAt(t, g, geo.V(300, 100))
	p, err := g.ShortestPath(from, to, nil)
	if err != nil {
		t.Fatal(err)
	}
	ids := p.Edges()
	if len(ids) != len(p.Steps) {
		t.Fatalf("Edges() length mismatch")
	}
	for i, s := range p.Steps {
		if ids[i] != s.Edge.ID {
			t.Fatalf("Edges()[%d] = %d, want %d", i, ids[i], s.Edge.ID)
		}
	}
}

func TestShortestDistancesMatchesPointQueries(t *testing.T) {
	g, err := Build(gridDB(t, 6))
	if err != nil {
		t.Fatal(err)
	}
	from := nodeAt(t, g, geo.V(100, 100))
	dists := g.ShortestDistances(from, nil, 350)
	if len(dists) < 4 {
		t.Fatalf("tree too small: %d nodes", len(dists))
	}
	for to, d := range dists {
		if d > 350 {
			t.Fatalf("node %d at %f exceeds the bound", to, d)
		}
		p, err := g.ShortestPath(from, to, nil)
		if err != nil {
			t.Fatalf("point query to %d failed: %v", to, err)
		}
		if !almostEq(p.Cost, d, 1e-9) {
			t.Fatalf("tree %f vs point query %f for node %d", d, p.Cost, to)
		}
	}
	// Nodes beyond the bound are absent.
	far := nodeAt(t, g, geo.V(500, 500))
	if _, ok := dists[far]; ok {
		t.Fatal("bound not enforced")
	}
}

func TestShortestDistancesInvalid(t *testing.T) {
	g, err := Build(gridDB(t, 2))
	if err != nil {
		t.Fatal(err)
	}
	if d := g.ShortestDistances(NodeID(-1), nil, 100); d != nil {
		t.Fatal("invalid node must return nil")
	}
	d := g.ShortestDistances(0, nil, 0)
	if len(d) == 0 {
		t.Fatal("non-positive bound must mean unbounded")
	}
}
