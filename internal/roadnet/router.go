package roadnet

import (
	"container/heap"
	"fmt"
	"math"
	"reflect"
	"sort"
	"sync"
	"sync/atomic"
)

// Router is the reusable shortest-path engine over one Graph. It is the
// hot core of the whole pipeline: incremental map-matching gap filling,
// the HMM matcher's one-to-many searches, fleet-simulator route choice
// and the driving-coach reference routes all run through it, millions
// of times per city-scale run.
//
// Compared with the naive per-call Dijkstra it replaces, the Router
//
//   - keeps per-goroutine search scratch in a sync.Pool: dense
//     dist/prev/visited arrays indexed by node ordinal and validated by
//     an epoch stamp, so a new search costs one integer increment
//     instead of fresh map allocations;
//   - pools the priority queues inside that scratch;
//   - answers point-to-point queries with bidirectional Dijkstra (or
//     A* when a heuristic speed is given), touching roughly the square
//     root of the nodes plain Dijkstra settles;
//   - memoises paths for the canonical weights (DistanceWeight,
//     TravelTimeWeight) in a sharded LRU cache keyed by
//     (from, to, weight-kind), with hit/miss counters.
//
// A Router is safe for concurrent use. Returned *Path values may be
// shared between goroutines and must be treated as immutable.
type Router struct {
	g       *Graph
	scratch sync.Pool // *searchScratch
	batches sync.Pool // *DistanceBatch
	cache   *pathCache
	hits    atomic.Uint64
	misses  atomic.Uint64
}

// RouterOptions tunes a Router.
type RouterOptions struct {
	// PathCachePaths caps the number of memoised paths across all cache
	// shards. 0 selects the default (8192); negative disables caching.
	PathCachePaths int
}

// DefaultPathCachePaths is the default path-cache capacity.
const DefaultPathCachePaths = 8192

// NewRouter builds a routing engine over g.
func NewRouter(g *Graph, opt RouterOptions) *Router {
	capPaths := opt.PathCachePaths
	if capPaths == 0 {
		capPaths = DefaultPathCachePaths
	}
	r := &Router{g: g}
	if capPaths > 0 {
		r.cache = newPathCache(capPaths)
	}
	r.scratch.New = func() interface{} { return newSearchScratch(len(g.Nodes)) }
	r.batches.New = func() interface{} { return &DistanceBatch{} }
	return r
}

// Graph returns the graph the router routes over.
func (r *Router) Graph() *Graph { return r.g }

// CacheStats reports the path-cache hit/miss/eviction counters and the
// current occupancy, total and per shard. The per-shard numbers exist
// to make Config.RouterCachePaths tuning observable: a full cache shows
// every shard pinned at its per-shard cap, while a skewed hash would
// show hot shards evicting with cold shards half-empty.
type CacheStats struct {
	Hits      uint64
	Misses    uint64
	Evictions uint64
	Entries   int
	// ShardEntries is the live entry count of each cache shard (nil when
	// caching is disabled).
	ShardEntries []int
}

// HitRate returns hits/(hits+misses), or 0 before any lookup.
func (s CacheStats) HitRate() float64 {
	if s.Hits+s.Misses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Hits+s.Misses)
}

// CacheStats returns a snapshot of the path-cache counters.
func (r *Router) CacheStats() CacheStats {
	s := CacheStats{Hits: r.hits.Load(), Misses: r.misses.Load()}
	if r.cache != nil {
		s.Evictions = r.cache.evictions.Load()
		s.ShardEntries = r.cache.shardLens()
		for _, n := range s.ShardEntries {
			s.Entries += n
		}
	}
	return s
}

// --- weight classification -------------------------------------------------

// weightKind classifies a WeightFunc for cache keying. Only the two
// canonical weights are cacheable; arbitrary closures (e.g. the fleet
// simulator's per-driver preference noise) are not.
type weightKind uint8

const (
	weightCustom weightKind = iota
	weightDistance
	weightTravelTime
)

var (
	distanceWeightPtr   = reflect.ValueOf(DistanceWeight).Pointer()
	travelTimeWeightPtr = reflect.ValueOf(TravelTimeWeight).Pointer()
)

func classifyWeight(w WeightFunc) (WeightFunc, weightKind) {
	if w == nil {
		return DistanceWeight, weightDistance
	}
	switch reflect.ValueOf(w).Pointer() {
	case distanceWeightPtr:
		return w, weightDistance
	case travelTimeWeightPtr:
		return w, weightTravelTime
	}
	return w, weightCustom
}

// --- search scratch --------------------------------------------------------

// searchScratch is the reusable state of one search: dense arrays
// indexed by node ordinal, validated by an epoch counter so that reuse
// costs a single increment instead of clearing. Two banks (forward and
// backward) serve the bidirectional search; unidirectional searches use
// the forward bank only.
type searchScratch struct {
	epoch uint32

	fwd, bwd scratchBank
}

type scratchBank struct {
	seen     []uint32 // epoch stamp: entry valid iff seen[n] == epoch
	done     []uint32 // epoch stamp: node settled
	dist     []float64
	prevEdge []EdgeID
	prevNode []NodeID
	touched  []NodeID // nodes stamped this epoch, for result extraction
	pq       priorityQueue
}

func newSearchScratch(n int) *searchScratch {
	s := &searchScratch{}
	s.fwd = newScratchBank(n)
	s.bwd = newScratchBank(n)
	return s
}

func newScratchBank(n int) scratchBank {
	return scratchBank{
		seen:     make([]uint32, n),
		done:     make([]uint32, n),
		dist:     make([]float64, n),
		prevEdge: make([]EdgeID, n),
		prevNode: make([]NodeID, n),
	}
}

// next advances the epoch, clearing the stamp arrays only on the
// (practically unreachable) uint32 wraparound.
func (s *searchScratch) next() uint32 {
	s.epoch++
	if s.epoch == 0 {
		for i := range s.fwd.seen {
			s.fwd.seen[i], s.fwd.done[i] = 0, 0
			s.bwd.seen[i], s.bwd.done[i] = 0, 0
		}
		s.epoch = 1
	}
	s.fwd.pq = s.fwd.pq[:0]
	s.bwd.pq = s.bwd.pq[:0]
	s.fwd.touched = s.fwd.touched[:0]
	s.bwd.touched = s.bwd.touched[:0]
	return s.epoch
}

func (b *scratchBank) relax(epoch uint32, v NodeID, d float64, via EdgeID, from NodeID) bool {
	if b.seen[v] == epoch && b.dist[v] <= d {
		return false
	}
	if b.seen[v] != epoch {
		b.seen[v] = epoch
		b.touched = append(b.touched, v)
	}
	b.dist[v] = d
	b.prevEdge[v] = via
	b.prevNode[v] = from
	return true
}

func (r *Router) getScratch() *searchScratch { return r.scratch.Get().(*searchScratch) }
func (r *Router) putScratch(s *searchScratch) {
	// Keep pooled banks sized to the graph (a Router is bound to one
	// graph, so this only matters for the zero value safety).
	r.scratch.Put(s)
}

// --- public API ------------------------------------------------------------

// ShortestPath returns the least-cost path from one node to another
// under the given weight (nil selects DistanceWeight). Canonical
// weights are answered from the sharded path cache when possible and
// computed with bidirectional Dijkstra otherwise; custom weights run
// plain Dijkstra (identical relaxation order to the historical
// implementation, so seeded generators reproduce byte-identical
// routes).
func (r *Router) ShortestPath(from, to NodeID, weight WeightFunc) (*Path, error) {
	if err := r.checkNodes(from, to); err != nil {
		return nil, err
	}
	weight, kind := classifyWeight(weight)
	if kind != weightCustom && r.cache != nil {
		key := pathKey{from: from, to: to, kind: kind}
		if p, ok := r.cache.get(key); ok {
			r.hits.Add(1)
			if p == nil {
				return nil, ErrNoPath
			}
			return p, nil
		}
		r.misses.Add(1)
		p, err := r.bidirectional(from, to, weight)
		if err != nil && err != ErrNoPath {
			return nil, err
		}
		r.cache.put(key, p) // nil records unreachability
		if p == nil {
			return nil, ErrNoPath
		}
		return p, nil
	}
	if kind != weightCustom {
		return r.bidirectional(from, to, weight)
	}
	return r.dijkstra(from, to, weight, nil)
}

// ShortestPathAStar runs A* with an admissible straight-line heuristic:
// for DistanceWeight semantics use heuristicSpeed <= 1 (metres per cost
// unit); for TravelTimeWeight pass the network's maximum speed in m/s.
func (r *Router) ShortestPathAStar(from, to NodeID, weight WeightFunc, heuristicSpeed float64) (*Path, error) {
	if err := r.checkNodes(from, to); err != nil {
		return nil, err
	}
	if heuristicSpeed <= 0 {
		heuristicSpeed = 1
	}
	weight, _ = classifyWeight(weight)
	target := r.g.Nodes[to].Pos
	h := func(n NodeID) float64 {
		return r.g.Nodes[n].Pos.Dist(target) / heuristicSpeed
	}
	return r.dijkstra(from, to, weight, h)
}

// ShortestDistances runs bounded Dijkstra from one node and returns the
// cost to every node reachable within maxCost (inclusive) as a map.
// Kept for compatibility; hot callers should use a DistanceBatch, which
// avoids the per-call map.
func (r *Router) ShortestDistances(from NodeID, weight WeightFunc, maxCost float64) map[NodeID]float64 {
	if int(from) < 0 || int(from) >= len(r.g.Nodes) {
		return nil
	}
	weight, _ = classifyWeight(weight)
	if maxCost <= 0 {
		maxCost = math.Inf(1)
	}
	s := r.getScratch()
	epoch := s.next()
	r.bounded(&s.fwd, epoch, from, weight, maxCost)
	out := make(map[NodeID]float64, len(s.fwd.touched))
	for _, n := range s.fwd.touched {
		if s.fwd.done[n] == epoch && s.fwd.dist[n] <= maxCost {
			out[n] = s.fwd.dist[n]
		}
	}
	r.putScratch(s)
	return out
}

func (r *Router) checkNodes(from, to NodeID) error {
	if int(from) < 0 || int(from) >= len(r.g.Nodes) || int(to) < 0 || int(to) >= len(r.g.Nodes) {
		return fmt.Errorf("%w (from=%d, to=%d, n=%d)", ErrNodeOutOfRange, from, to, len(r.g.Nodes))
	}
	return nil
}

// --- unidirectional Dijkstra / A* ------------------------------------------

// dijkstra mirrors the historical map-based implementation on dense
// scratch: identical relaxation and pop order, so results (including
// tie-breaks and the edge order seen by stateful custom weights) are
// byte-identical to the pre-Router code.
func (r *Router) dijkstra(from, to NodeID, weight WeightFunc, h func(NodeID) float64) (*Path, error) {
	g := r.g
	s := r.getScratch()
	defer r.putScratch(s)
	epoch := s.next()
	b := &s.fwd

	b.seen[from] = epoch
	b.dist[from] = 0
	b.prevNode[from] = from
	b.touched = append(b.touched, from)

	push := func(n NodeID, cost float64) {
		est := cost
		if h != nil {
			est += h(n)
		}
		heap.Push(&b.pq, pqItem{node: n, cost: est})
	}
	push(from, 0)

	for b.pq.Len() > 0 {
		it := heap.Pop(&b.pq).(pqItem)
		u := it.node
		if b.done[u] == epoch {
			continue
		}
		b.done[u] = epoch
		if u == to {
			break
		}
		du := b.dist[u]
		for _, eid := range g.Nodes[u].Edges {
			e := &g.Edges[eid]
			if e.From == e.To {
				continue // self-loops never shorten a path
			}
			forward := e.From == u
			if !e.CanTraverse(forward) {
				continue
			}
			w := weight(e, forward)
			if math.IsInf(w, 1) || w < 0 {
				continue
			}
			v := e.Other(u)
			if b.relax(epoch, v, du+w, eid, u) {
				push(v, du+w)
			}
		}
	}
	if b.done[to] != epoch && from != to {
		if b.seen[to] != epoch {
			return nil, ErrNoPath
		}
	}
	return b.reconstruct(g, from, to, epoch), nil
}

// reconstruct walks the forward prev chain from `to` back to `from` and
// materialises a Path (travel order).
func (b *scratchBank) reconstruct(g *Graph, from, to NodeID, epoch uint32) *Path {
	path := &Path{Cost: 0}
	if b.seen[to] == epoch {
		path.Cost = b.dist[to]
	}
	at := to
	for at != from {
		eid := b.prevEdge[at]
		e := &g.Edges[eid]
		u := b.prevNode[at]
		path.Steps = append(path.Steps, PathStep{Edge: e, Forward: e.From == u})
		path.Length += e.Length
		at = u
	}
	for i, j := 0, len(path.Steps)-1; i < j; i, j = i+1, j-1 {
		path.Steps[i], path.Steps[j] = path.Steps[j], path.Steps[i]
	}
	path.Nodes = make([]NodeID, 0, len(path.Steps)+1)
	path.Nodes = append(path.Nodes, from)
	cur := from
	for _, s := range path.Steps {
		cur = s.Edge.Other(cur)
		path.Nodes = append(path.Nodes, cur)
	}
	return path
}

// --- bidirectional Dijkstra ------------------------------------------------

// bidirectional runs Dijkstra simultaneously from the origin (forward,
// respecting flow directions) and the destination (backward, traversing
// edges against travel direction) and stops once the frontiers prove
// the best meeting point optimal. Deterministic: ties are broken by the
// heap's stable pop order and strict improvement tests, so repeated
// queries return identical paths.
func (r *Router) bidirectional(from, to NodeID, weight WeightFunc) (*Path, error) {
	if from == to {
		return &Path{Nodes: []NodeID{from}}, nil
	}
	g := r.g
	s := r.getScratch()
	defer r.putScratch(s)
	epoch := s.next()
	f, bk := &s.fwd, &s.bwd

	f.seen[from] = epoch
	f.dist[from] = 0
	f.prevNode[from] = from
	f.touched = append(f.touched, from)
	heap.Push(&f.pq, pqItem{node: from, cost: 0})

	bk.seen[to] = epoch
	bk.dist[to] = 0
	bk.prevNode[to] = to
	bk.touched = append(bk.touched, to)
	heap.Push(&bk.pq, pqItem{node: to, cost: 0})

	best := math.Inf(1)
	meet := NodeID(-1)

	// consider updates the best meeting point through node v.
	consider := func(v NodeID) {
		if f.seen[v] == epoch && bk.seen[v] == epoch {
			if c := f.dist[v] + bk.dist[v]; c < best {
				best = c
				meet = v
			}
		}
	}

	// expand settles the top of one bank's queue. dir=true expands the
	// forward search.
	expand := func(b *scratchBank, forwardSearch bool) {
		it := heap.Pop(&b.pq).(pqItem)
		u := it.node
		if b.done[u] == epoch {
			return
		}
		b.done[u] = epoch
		du := b.dist[u]
		for _, eid := range g.Nodes[u].Edges {
			e := &g.Edges[eid]
			if e.From == e.To {
				continue
			}
			v := e.Other(u)
			// Travel orientation of the traversal this relaxation
			// models: forward search drives u->v; backward search
			// extends paths that drive v->u.
			var travelForward bool
			if forwardSearch {
				travelForward = e.From == u
			} else {
				travelForward = e.From == v
			}
			if !e.CanTraverse(travelForward) {
				continue
			}
			w := weight(e, travelForward)
			if math.IsInf(w, 1) || w < 0 {
				continue
			}
			if b.relax(epoch, v, du+w, eid, u) {
				heap.Push(&b.pq, pqItem{node: v, cost: du + w})
				consider(v)
			}
		}
	}

	for f.pq.Len() > 0 || bk.pq.Len() > 0 {
		topF, topB := math.Inf(1), math.Inf(1)
		if f.pq.Len() > 0 {
			topF = f.pq[0].cost
		}
		if bk.pq.Len() > 0 {
			topB = bk.pq[0].cost
		}
		if topF+topB >= best {
			break // the best meeting point is provably optimal
		}
		// Expand the cheaper frontier (ties: forward) — the classic
		// alternation that keeps both balls of equal radius.
		if topF <= topB {
			expand(f, true)
		} else {
			expand(bk, false)
		}
	}
	if meet < 0 {
		return nil, ErrNoPath
	}

	// Stitch: forward half from->meet, then backward half meet->to.
	path := &Path{Cost: best}
	at := meet
	for at != from {
		eid := f.prevEdge[at]
		e := &g.Edges[eid]
		u := f.prevNode[at]
		path.Steps = append(path.Steps, PathStep{Edge: e, Forward: e.From == u})
		at = u
	}
	for i, j := 0, len(path.Steps)-1; i < j; i, j = i+1, j-1 {
		path.Steps[i], path.Steps[j] = path.Steps[j], path.Steps[i]
	}
	at = meet
	for at != to {
		eid := bk.prevEdge[at]
		e := &g.Edges[eid]
		u := bk.prevNode[at] // next node toward the destination
		path.Steps = append(path.Steps, PathStep{Edge: e, Forward: e.From == at})
		at = u
	}
	for _, st := range path.Steps {
		path.Length += st.Edge.Length
	}
	path.Nodes = make([]NodeID, 0, len(path.Steps)+1)
	path.Nodes = append(path.Nodes, from)
	cur := from
	for _, st := range path.Steps {
		cur = st.Edge.Other(cur)
		path.Nodes = append(path.Nodes, cur)
	}
	return path, nil
}

// bounded runs Dijkstra from `from` into bank b, stopping at maxCost.
func (r *Router) bounded(b *scratchBank, epoch uint32, from NodeID, weight WeightFunc, maxCost float64) {
	g := r.g
	b.seen[from] = epoch
	b.dist[from] = 0
	b.prevNode[from] = from
	b.touched = append(b.touched, from)
	heap.Push(&b.pq, pqItem{node: from, cost: 0})
	for b.pq.Len() > 0 {
		it := heap.Pop(&b.pq).(pqItem)
		u := it.node
		if b.done[u] == epoch {
			continue
		}
		du := b.dist[u]
		if du > maxCost {
			continue
		}
		b.done[u] = epoch
		for _, eid := range g.Nodes[u].Edges {
			e := &g.Edges[eid]
			if e.From == e.To {
				continue
			}
			forward := e.From == u
			if !e.CanTraverse(forward) {
				continue
			}
			w := weight(e, forward)
			if math.IsInf(w, 1) || w < 0 {
				continue
			}
			if nd := du + w; nd <= maxCost {
				v := e.Other(u)
				if b.relax(epoch, v, nd, eid, u) {
					heap.Push(&b.pq, pqItem{node: v, cost: nd})
				}
			}
		}
	}
}

// --- one-to-many batches ---------------------------------------------------

// nodeDist is one settled node of a distance tree.
type nodeDist struct {
	node NodeID
	dist float64
}

// DistanceBatch answers many (source, target) network-distance lookups
// sharing a small set of sources — the HMM matcher's per-layer access
// pattern. Each source's bounded Dijkstra runs through the router's
// pooled scratch and is stored as a compact sorted slice, so the batch
// allocates no per-query maps. Release returns the batch to the pool.
//
// A DistanceBatch is NOT safe for concurrent use; each goroutine should
// obtain its own.
type DistanceBatch struct {
	r       *Router
	weight  WeightFunc
	maxCost float64
	sources []NodeID
	lists   [][]nodeDist
}

// NewDistanceBatch starts a batch of bounded one-to-many queries under
// one weight (nil selects DistanceWeight) and bound (<= 0 = unbounded).
func (r *Router) NewDistanceBatch(weight WeightFunc, maxCost float64) *DistanceBatch {
	weight, _ = classifyWeight(weight)
	if maxCost <= 0 {
		maxCost = math.Inf(1)
	}
	b := r.batches.Get().(*DistanceBatch)
	b.r = r
	b.weight = weight
	b.maxCost = maxCost
	return b
}

// AddSource computes (or reuses) the distance tree rooted at n.
func (b *DistanceBatch) AddSource(n NodeID) {
	if int(n) < 0 || int(n) >= len(b.r.g.Nodes) {
		return
	}
	for _, s := range b.sources {
		if s == n {
			return
		}
	}
	s := b.r.getScratch()
	epoch := s.next()
	b.r.bounded(&s.fwd, epoch, n, b.weight, b.maxCost)

	var list []nodeDist
	if len(b.lists) > len(b.sources) { // reuse a released slice
		list = b.lists[len(b.sources)][:0]
		b.lists = b.lists[:len(b.sources)]
	}
	for _, v := range s.fwd.touched {
		if s.fwd.done[v] == epoch && s.fwd.dist[v] <= b.maxCost {
			list = append(list, nodeDist{node: v, dist: s.fwd.dist[v]})
		}
	}
	b.r.putScratch(s)
	sort.Slice(list, func(i, j int) bool { return list[i].node < list[j].node })
	b.sources = append(b.sources, n)
	b.lists = append(b.lists, list)
}

// Dist returns the network distance from a previously added source to a
// node; ok is false when the source is unknown or the node lies beyond
// the batch bound.
func (b *DistanceBatch) Dist(source, to NodeID) (float64, bool) {
	for i, s := range b.sources {
		if s != source {
			continue
		}
		list := b.lists[i]
		lo, hi := 0, len(list)
		for lo < hi {
			mid := (lo + hi) / 2
			if list[mid].node < to {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		if lo < len(list) && list[lo].node == to {
			return list[lo].dist, true
		}
		return 0, false
	}
	return 0, false
}

// Release returns the batch (and its backing slices) to the router's
// pool. The batch must not be used afterwards.
func (b *DistanceBatch) Release() {
	r := b.r
	b.r = nil
	b.weight = nil
	b.sources = b.sources[:0]
	// Keep lists' backing arrays for reuse; AddSource re-slices them.
	if r != nil {
		r.batches.Put(b)
	}
}

// --- sharded LRU path cache ------------------------------------------------

const pathCacheShards = 16

type pathKey struct {
	from, to NodeID
	kind     weightKind
}

// pathCache is a sharded LRU keyed by (from, to, weight-kind). A nil
// value records a proven "no path" so unreachable pairs are not
// re-searched.
type pathCache struct {
	shards    [pathCacheShards]cacheShard
	evictions atomic.Uint64
}

type cacheShard struct {
	mu      sync.Mutex
	cap     int
	entries map[pathKey]*cacheEntry
	head    *cacheEntry // most recently used
	tail    *cacheEntry // least recently used
}

type cacheEntry struct {
	key        pathKey
	path       *Path
	prev, next *cacheEntry
}

func newPathCache(totalCap int) *pathCache {
	perShard := (totalCap + pathCacheShards - 1) / pathCacheShards
	if perShard < 1 {
		perShard = 1
	}
	c := &pathCache{}
	for i := range c.shards {
		c.shards[i].cap = perShard
		c.shards[i].entries = make(map[pathKey]*cacheEntry, perShard)
	}
	return c
}

func (c *pathCache) shard(k pathKey) *cacheShard {
	h := uint64(k.from)*0x9e3779b97f4a7c15 ^ uint64(k.to)*0xbf58476d1ce4e5b9 ^ uint64(k.kind)
	h ^= h >> 29
	return &c.shards[h%pathCacheShards]
}

func (c *pathCache) get(k pathKey) (*Path, bool) {
	s := c.shard(k)
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.entries[k]
	if !ok {
		return nil, false
	}
	s.moveToFront(e)
	return e.path, true
}

func (c *pathCache) put(k pathKey, p *Path) {
	s := c.shard(k)
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.entries[k]; ok {
		e.path = p
		s.moveToFront(e)
		return
	}
	e := &cacheEntry{key: k, path: p}
	s.entries[k] = e
	s.pushFront(e)
	if len(s.entries) > s.cap {
		lru := s.tail
		s.unlink(lru)
		delete(s.entries, lru.key)
		c.evictions.Add(1)
	}
}

func (c *pathCache) len() int {
	n := 0
	for i := range c.shards {
		c.shards[i].mu.Lock()
		n += len(c.shards[i].entries)
		c.shards[i].mu.Unlock()
	}
	return n
}

// shardLens snapshots the live entry count of each shard.
func (c *pathCache) shardLens() []int {
	out := make([]int, pathCacheShards)
	for i := range c.shards {
		c.shards[i].mu.Lock()
		out[i] = len(c.shards[i].entries)
		c.shards[i].mu.Unlock()
	}
	return out
}

func (s *cacheShard) pushFront(e *cacheEntry) {
	e.prev = nil
	e.next = s.head
	if s.head != nil {
		s.head.prev = e
	}
	s.head = e
	if s.tail == nil {
		s.tail = e
	}
}

func (s *cacheShard) unlink(e *cacheEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		s.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		s.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (s *cacheShard) moveToFront(e *cacheEntry) {
	if s.head == e {
		return
	}
	s.unlink(e)
	s.pushFront(e)
}
