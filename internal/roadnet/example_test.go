package roadnet_test

import (
	"fmt"

	"repro/internal/digiroad"
	"repro/internal/geo"
	"repro/internal/roadnet"
)

func ExampleBuild() {
	// Four traffic elements: a two-element chain east of a junction
	// where two more arms meet. Map preparation merges the chain into a
	// single edge (the paper's Table 1).
	db := digiroad.NewDatabase(digiroad.OuluOrigin)
	for _, g := range []geo.Polyline{
		geo.Line(0, 0, 0, 100),  // north arm
		geo.Line(0, 0, -100, 0), // west arm
		geo.Line(0, 0, 60, 0),   // east chain part 1
		geo.Line(60, 0, 120, 0), // east chain part 2
	} {
		if _, err := db.AddElement(digiroad.TrafficElement{
			Geom: g, Class: digiroad.ClassLocal, SpeedLimitKmh: 40,
		}); err != nil {
			fmt.Println(err)
			return
		}
	}
	graph, err := roadnet.Build(db)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("%d nodes, %d edges, %d junction(s)\n",
		len(graph.Nodes), len(graph.Edges), len(graph.Junctions()))
	for _, pair := range graph.JunctionPairs() {
		if len(pair.Elements) > 1 {
			fmt.Printf("merged chain: elements %v\n", pair.Elements)
		}
	}
	// Output:
	// 4 nodes, 3 edges, 1 junction(s)
	// merged chain: elements [3 4]
}

func ExampleGraph_ShortestPath() {
	db := digiroad.NewDatabase(digiroad.OuluOrigin)
	// A square block with one diagonal.
	for _, g := range []geo.Polyline{
		geo.Line(0, 0, 100, 0),
		geo.Line(100, 0, 100, 100),
		geo.Line(0, 0, 0, 100),
		geo.Line(0, 100, 100, 100),
		geo.Line(0, 0, 100, 100), // diagonal
	} {
		db.AddElement(digiroad.TrafficElement{Geom: g, Class: digiroad.ClassLocal, SpeedLimitKmh: 40})
	}
	graph, _ := roadnet.Build(db)
	from := graph.NearestNode(geo.V(0, 0)).ID
	to := graph.NearestNode(geo.V(100, 100)).ID
	path, _ := graph.ShortestPath(from, to, roadnet.DistanceWeight)
	fmt.Printf("%.0f m over %d edge(s)\n", path.Length, len(path.Steps))
	// Output:
	// 141 m over 1 edge(s)
}
