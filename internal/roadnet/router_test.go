package roadnet

import (
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"repro/internal/digiroad"
	"repro/internal/geo"
)

// refWeight wraps DistanceWeight in a closure so the router classifies
// it as custom and runs the historical unidirectional Dijkstra — the
// reference the bidirectional search is checked against.
func refWeight(e *Edge, forward bool) float64 { return DistanceWeight(e, forward) }

func TestBidirectionalMatchesDijkstra(t *testing.T) {
	g, err := Build(gridDB(t, 8))
	if err != nil {
		t.Fatal(err)
	}
	r := NewRouter(g, RouterOptions{PathCachePaths: -1}) // no cache: always search
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		from := NodeID(rng.Intn(len(g.Nodes)))
		to := NodeID(rng.Intn(len(g.Nodes)))
		bi, errB := r.ShortestPath(from, to, DistanceWeight)
		uni, errU := r.ShortestPath(from, to, refWeight)
		if (errB == nil) != (errU == nil) {
			t.Fatalf("trial %d (%d->%d): error mismatch %v vs %v", trial, from, to, errB, errU)
		}
		if errB != nil {
			continue
		}
		if !almostEq(bi.Cost, uni.Cost, 1e-9) {
			t.Fatalf("trial %d (%d->%d): bidirectional %f vs dijkstra %f", trial, from, to, bi.Cost, uni.Cost)
		}
		// The stitched path must be a connected walk of the right cost.
		var walked float64
		cur := from
		for _, s := range bi.Steps {
			if s.Forward && s.Edge.From != cur {
				t.Fatalf("trial %d: disconnected step at %d", trial, cur)
			}
			if !s.Forward && s.Edge.To != cur {
				t.Fatalf("trial %d: disconnected step at %d", trial, cur)
			}
			walked += DistanceWeight(s.Edge, s.Forward)
			cur = s.Edge.Other(cur)
		}
		if cur != to || !almostEq(walked, bi.Cost, 1e-9) {
			t.Fatalf("trial %d: walk ends at %d (want %d), cost %f vs %f", trial, cur, to, walked, bi.Cost)
		}
	}
}

func TestBidirectionalRespectsOneWay(t *testing.T) {
	// Same layout as TestShortestPathRespectsOneWay, driven through a
	// cacheless Router so the bidirectional search itself is exercised:
	// the backward frontier must expand one-way edges in their legal
	// travel direction only.
	db := buildDB(t, []digiroad.TrafficElement{
		el(1, 40, digiroad.FlowBackward, 0, 0, 100, 0), // B->A only
		el(2, 40, digiroad.FlowBoth, 0, 0, 0, 80),
		el(3, 40, digiroad.FlowBoth, 0, 80, 100, 0),
		el(4, 40, digiroad.FlowBoth, 0, 0, -50, 0),
		el(5, 40, digiroad.FlowBoth, 100, 0, 150, 0),
	})
	g, err := Build(db)
	if err != nil {
		t.Fatal(err)
	}
	r := NewRouter(g, RouterOptions{PathCachePaths: -1})
	a := nodeAt(t, g, geo.V(0, 0))
	b := nodeAt(t, g, geo.V(100, 0))
	pab, err := r.ShortestPath(a, b, DistanceWeight)
	if err != nil {
		t.Fatal(err)
	}
	if pab.Length < 150 {
		t.Fatalf("A->B must detour, got length %f", pab.Length)
	}
	pba, err := r.ShortestPath(b, a, DistanceWeight)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(pba.Length, 100, 1e-9) {
		t.Fatalf("B->A must use the one-way, got length %f", pba.Length)
	}
}

func TestRouterPathCache(t *testing.T) {
	g, err := Build(gridDB(t, 5))
	if err != nil {
		t.Fatal(err)
	}
	r := NewRouter(g, RouterOptions{})
	from := nodeAt(t, g, geo.V(100, 100))
	to := nodeAt(t, g, geo.V(400, 300))

	p1, err := r.ShortestPath(from, to, DistanceWeight)
	if err != nil {
		t.Fatal(err)
	}
	s := r.CacheStats()
	if s.Misses != 1 || s.Hits != 0 || s.Entries != 1 {
		t.Fatalf("after first query: %+v", s)
	}
	p2, err := r.ShortestPath(from, to, DistanceWeight)
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p2 {
		t.Fatal("cached query must return the memoised path")
	}
	if s := r.CacheStats(); s.Hits != 1 {
		t.Fatalf("after second query: %+v", s)
	}

	// Distinct weight kinds are distinct cache keys.
	if _, err := r.ShortestPath(from, to, TravelTimeWeight); err != nil {
		t.Fatal(err)
	}
	if s := r.CacheStats(); s.Misses != 2 || s.Entries != 2 {
		t.Fatalf("after travel-time query: %+v", s)
	}

	// Custom weights bypass the cache entirely.
	if _, err := r.ShortestPath(from, to, refWeight); err != nil {
		t.Fatal(err)
	}
	if s := r.CacheStats(); s.Misses != 2 || s.Hits != 1 {
		t.Fatalf("custom weight touched the cache: %+v", s)
	}
}

func TestRouterCachesNoPath(t *testing.T) {
	db := buildDB(t, []digiroad.TrafficElement{
		el(1, 40, digiroad.FlowBoth, 0, 0, 100, 0),
		el(2, 40, digiroad.FlowBoth, 1000, 0, 1100, 0),
	})
	g, err := Build(db)
	if err != nil {
		t.Fatal(err)
	}
	r := NewRouter(g, RouterOptions{})
	from := nodeAt(t, g, geo.V(0, 0))
	to := nodeAt(t, g, geo.V(1100, 0))
	for i := 0; i < 2; i++ {
		if _, err := r.ShortestPath(from, to, DistanceWeight); err != ErrNoPath {
			t.Fatalf("attempt %d: err = %v, want ErrNoPath", i, err)
		}
	}
	if s := r.CacheStats(); s.Hits != 1 || s.Misses != 1 {
		t.Fatalf("unreachable pair must be cached: %+v", s)
	}
}

func TestRouterCacheEviction(t *testing.T) {
	g, err := Build(gridDB(t, 6))
	if err != nil {
		t.Fatal(err)
	}
	// Tiny cache: one path per shard.
	r := NewRouter(g, RouterOptions{PathCachePaths: 16})
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 500; i++ {
		from := NodeID(rng.Intn(len(g.Nodes)))
		to := NodeID(rng.Intn(len(g.Nodes)))
		if _, err := r.ShortestPath(from, to, DistanceWeight); err != nil && err != ErrNoPath {
			t.Fatal(err)
		}
	}
	s := r.CacheStats()
	if s.Entries > 16 {
		t.Fatalf("cache exceeded its capacity: %+v", s)
	}
	// With 500 random pairs through a 16-path cache, evictions must have
	// happened, and the counter must reconcile with what is left:
	// insertions (= misses) minus evictions equals live entries.
	if s.Evictions == 0 {
		t.Fatalf("expected evictions on an overflowing cache: %+v", s)
	}
	if got := s.Misses - s.Evictions; got != uint64(s.Entries) {
		t.Fatalf("misses(%d) - evictions(%d) = %d, want Entries = %d",
			s.Misses, s.Evictions, got, s.Entries)
	}
	// Per-shard occupancy must sum to the total and respect the
	// per-shard cap (16 paths over 16 shards = 1 each).
	sum := 0
	for i, n := range s.ShardEntries {
		sum += n
		if n > 1 {
			t.Fatalf("shard %d holds %d entries, per-shard cap is 1", i, n)
		}
	}
	if sum != s.Entries {
		t.Fatalf("shard occupancy sums to %d, Entries = %d", sum, s.Entries)
	}
}

func TestDistanceBatchMatchesShortestDistances(t *testing.T) {
	g, err := Build(gridDB(t, 6))
	if err != nil {
		t.Fatal(err)
	}
	r := NewRouter(g, RouterOptions{})
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 20; trial++ {
		bound := 150 + rng.Float64()*400
		batch := r.NewDistanceBatch(DistanceWeight, bound)
		sources := []NodeID{
			NodeID(rng.Intn(len(g.Nodes))),
			NodeID(rng.Intn(len(g.Nodes))),
			NodeID(rng.Intn(len(g.Nodes))),
		}
		for _, s := range sources {
			batch.AddSource(s)
			batch.AddSource(s) // idempotent
		}
		for _, s := range sources {
			want := g.ShortestDistances(s, DistanceWeight, bound)
			got := map[NodeID]float64{}
			for n := range g.Nodes {
				if d, ok := batch.Dist(s, NodeID(n)); ok {
					got[NodeID(n)] = d
				}
			}
			if !reflect.DeepEqual(want, got) {
				t.Fatalf("trial %d source %d: batch %d nodes vs map %d nodes", trial, s, len(got), len(want))
			}
		}
		if _, ok := batch.Dist(NodeID(len(g.Nodes)+5), 0); ok {
			t.Fatal("unknown source must report !ok")
		}
		batch.Release()
	}
}

func TestRouterConcurrentUse(t *testing.T) {
	g, err := Build(gridDB(t, 7))
	if err != nil {
		t.Fatal(err)
	}
	r := NewRouter(g, RouterOptions{PathCachePaths: 64})
	const workers = 8

	// Reference answers computed serially first.
	type query struct{ from, to NodeID }
	rng := rand.New(rand.NewSource(23))
	queries := make([]query, 64)
	want := make([]float64, len(queries))
	for i := range queries {
		queries[i] = query{NodeID(rng.Intn(len(g.Nodes))), NodeID(rng.Intn(len(g.Nodes)))}
		p, err := r.ShortestPath(queries[i].from, queries[i].to, DistanceWeight)
		if err != nil {
			want[i] = -1
		} else {
			want[i] = p.Cost
		}
	}

	var wg sync.WaitGroup
	errs := make(chan string, workers*len(queries))
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for rep := 0; rep < 20; rep++ {
				for i, q := range queries {
					p, err := r.ShortestPath(q.from, q.to, DistanceWeight)
					switch {
					case err != nil && want[i] >= 0,
						err == nil && want[i] < 0,
						err == nil && !almostEq(p.Cost, want[i], 1e-9):
						errs <- "concurrent result diverged"
						return
					}
					// Interleave batch queries to stress the scratch pool.
					if i%16 == 0 {
						b := r.NewDistanceBatch(DistanceWeight, 300)
						b.AddSource(q.from)
						b.Dist(q.from, q.to)
						b.Release()
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for msg := range errs {
		t.Fatal(msg)
	}
}

func TestGraphRouterIsShared(t *testing.T) {
	g, err := Build(gridDB(t, 3))
	if err != nil {
		t.Fatal(err)
	}
	if g.Router() != g.Router() {
		t.Fatal("Graph.Router must return one shared engine")
	}
}
