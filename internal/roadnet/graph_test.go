package roadnet

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/digiroad"
	"repro/internal/geo"
)

// buildDB constructs a database from raw element specs.
func buildDB(t *testing.T, elems []digiroad.TrafficElement) *digiroad.Database {
	t.Helper()
	db := digiroad.NewDatabase(digiroad.OuluOrigin)
	for _, e := range elems {
		if _, err := db.AddElement(e); err != nil {
			t.Fatalf("AddElement: %v", err)
		}
	}
	return db
}

func el(id int, limit float64, flow digiroad.FlowDirection, coords ...float64) digiroad.TrafficElement {
	return digiroad.TrafficElement{
		ID:            id,
		Geom:          geo.Line(coords...),
		Class:         digiroad.ClassLocal,
		Flow:          flow,
		SpeedLimitKmh: limit,
	}
}

// crossDB builds a plus-shaped network: four arms meeting at the origin,
// with the east arm split into a two-element chain.
func crossDB(t *testing.T) *digiroad.Database {
	return buildDB(t, []digiroad.TrafficElement{
		el(1, 40, digiroad.FlowBoth, 0, 0, 0, 100),  // north arm
		el(2, 40, digiroad.FlowBoth, 0, 0, 0, -100), // south arm
		el(3, 40, digiroad.FlowBoth, 0, 0, -100, 0), // west arm
		el(4, 40, digiroad.FlowBoth, 0, 0, 60, 0),   // east arm part 1
		el(5, 40, digiroad.FlowBoth, 60, 0, 120, 0), // east arm part 2
	})
}

func TestBuildMergesChains(t *testing.T) {
	g, err := Build(crossDB(t))
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	// Nodes: the centre junction (degree 4) plus four arm ends.
	if len(g.Nodes) != 5 {
		t.Fatalf("got %d nodes, want 5", len(g.Nodes))
	}
	if len(g.Edges) != 4 {
		t.Fatalf("got %d edges, want 4", len(g.Edges))
	}
	// The east arm must be one edge made of elements {4,5}.
	var east *Edge
	for i := range g.Edges {
		if len(g.Edges[i].Elements) == 2 {
			east = &g.Edges[i]
		}
	}
	if east == nil {
		t.Fatal("no merged chain edge found")
	}
	if east.Elements[0] != 4 || east.Elements[1] != 5 {
		t.Fatalf("east chain elements = %v, want [4 5]", east.Elements)
	}
	if !almostEq(east.Length, 120, 1e-9) {
		t.Fatalf("east chain length = %f, want 120", east.Length)
	}
	// Junction typing: centre has degree 4, arm ends degree 1.
	junctions := g.Junctions()
	if len(junctions) != 1 || junctions[0].Pos.Dist(geo.V(0, 0)) > 1e-9 {
		t.Fatalf("junctions = %v", junctions)
	}
}

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestBuildSpeedLimitAndClassMerge(t *testing.T) {
	db := buildDB(t, []digiroad.TrafficElement{
		// A chain with mixed limits: merged edge takes the minimum.
		el(1, 60, digiroad.FlowBoth, 0, 0, 50, 0),
		el(2, 40, digiroad.FlowBoth, 50, 0, 100, 0),
		// Branches to make the chain endpoints junction-free.
	})
	g, err := Build(db)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if len(g.Edges) != 1 {
		t.Fatalf("edges = %d, want 1", len(g.Edges))
	}
	if g.Edges[0].SpeedLimitKmh != 40 {
		t.Fatalf("merged limit = %f, want 40", g.Edges[0].SpeedLimitKmh)
	}
}

func TestBuildOneWayChainOrientation(t *testing.T) {
	// Two one-way elements digitised in opposite directions but forming
	// a consistent one-way street west->east.
	db := buildDB(t, []digiroad.TrafficElement{
		el(1, 40, digiroad.FlowForward, 0, 0, 50, 0),    // digitised W->E, flow with
		el(2, 40, digiroad.FlowBackward, 100, 0, 50, 0), // digitised E->W, flow against
	})
	g, err := Build(db)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if len(g.Edges) != 1 {
		t.Fatalf("edges = %d, want 1", len(g.Edges))
	}
	e := &g.Edges[0]
	// Whatever the stored orientation, traversal must only be possible
	// in the west->east sense.
	westToEast := g.Nodes[e.From].Pos.X < g.Nodes[e.To].Pos.X
	if westToEast && e.Flow != digiroad.FlowForward {
		t.Fatalf("flow = %v for W->E geometry, want forward", e.Flow)
	}
	if !westToEast && e.Flow != digiroad.FlowBackward {
		t.Fatalf("flow = %v for E->W geometry, want backward", e.Flow)
	}
}

func TestBuildConflictingOneWaysFallBackToBoth(t *testing.T) {
	db := buildDB(t, []digiroad.TrafficElement{
		el(1, 40, digiroad.FlowForward, 0, 0, 50, 0),
		el(2, 40, digiroad.FlowForward, 100, 0, 50, 0), // points at each other
	})
	g, err := Build(db)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if len(g.Edges) != 1 || g.Edges[0].Flow != digiroad.FlowBoth {
		t.Fatalf("conflicting chain flow = %v, want both", g.Edges[0].Flow)
	}
}

func TestBuildPureCycle(t *testing.T) {
	// A triangle of elements with every endpoint of degree 2: a pure
	// cycle that must be broken at an arbitrary node rather than lost.
	db := buildDB(t, []digiroad.TrafficElement{
		el(1, 40, digiroad.FlowBoth, 0, 0, 100, 0),
		el(2, 40, digiroad.FlowBoth, 100, 0, 50, 80),
		el(3, 40, digiroad.FlowBoth, 50, 80, 0, 0),
	})
	g, err := Build(db)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	totalElems := 0
	for i := range g.Edges {
		totalElems += len(g.Edges[i].Elements)
	}
	if totalElems != 3 {
		t.Fatalf("cycle lost elements: %d of 3 used", totalElems)
	}
}

func TestBuildSkipsPedestrianAndEmpty(t *testing.T) {
	db := digiroad.NewDatabase(digiroad.OuluOrigin)
	if _, err := db.AddElement(digiroad.TrafficElement{
		Geom:  geo.Line(0, 0, 10, 0),
		Class: digiroad.ClassPedestrian,
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := Build(db); err == nil {
		t.Fatal("pedestrian-only network must fail to build")
	}
	if _, err := Build(digiroad.NewDatabase(digiroad.OuluOrigin)); err == nil {
		t.Fatal("empty database must fail to build")
	}
}

func TestBuildDefaultSpeedLimit(t *testing.T) {
	db := buildDB(t, []digiroad.TrafficElement{
		el(1, 0, digiroad.FlowBoth, 0, 0, 100, 0), // no limit recorded
	})
	g, err := Build(db)
	if err != nil {
		t.Fatal(err)
	}
	if g.Edges[0].SpeedLimitKmh != 50 {
		t.Fatalf("default limit = %f, want 50", g.Edges[0].SpeedLimitKmh)
	}
}

func TestJunctionPairs(t *testing.T) {
	g, err := Build(crossDB(t))
	if err != nil {
		t.Fatal(err)
	}
	pairs := g.JunctionPairs()
	if len(pairs) != len(g.Edges) {
		t.Fatalf("pairs = %d, want %d", len(pairs), len(g.Edges))
	}
	// Find the merged east edge row and check its element array.
	found := false
	for _, p := range pairs {
		if len(p.Elements) == 2 {
			found = true
			if p.Elements[0] != 4 || p.Elements[1] != 5 {
				t.Fatalf("pair elements = %v", p.Elements)
			}
		}
	}
	if !found {
		t.Fatal("no multi-element junction pair row")
	}
}

func TestEdgesNearAndNearestEdge(t *testing.T) {
	g, err := Build(crossDB(t))
	if err != nil {
		t.Fatal(err)
	}
	cands := g.EdgesNear(geo.V(30, 5), 10)
	if len(cands) != 1 {
		t.Fatalf("EdgesNear found %d, want 1", len(cands))
	}
	if cands[0].Distance > 5.01 || cands[0].Proj.Point.Dist(geo.V(30, 0)) > 1e-9 {
		t.Fatalf("candidate = %+v", cands[0])
	}
	best, ok := g.NearestEdge(geo.V(30, 5), 100)
	if !ok || best.Edge.ID != cands[0].Edge.ID {
		t.Fatalf("NearestEdge = %+v, %v", best, ok)
	}
	if _, ok := g.NearestEdge(geo.V(5000, 5000), 100); ok {
		t.Fatal("NearestEdge far away must fail")
	}
}

func TestNearestNode(t *testing.T) {
	g, err := Build(crossDB(t))
	if err != nil {
		t.Fatal(err)
	}
	n := g.NearestNode(geo.V(2, 3))
	if n == nil || n.Pos.Dist(geo.V(0, 0)) > 1e-9 {
		t.Fatalf("NearestNode = %v", n)
	}
}

func TestSynthCityGraphInvariants(t *testing.T) {
	city := digiroad.SynthesizeOulu(digiroad.SynthConfig{Seed: 1})
	g, err := Build(city.DB)
	if err != nil {
		t.Fatalf("Build synth city: %v", err)
	}
	if len(g.Junctions()) < 100 {
		t.Fatalf("synthetic city has only %d junctions", len(g.Junctions()))
	}
	// Every drivable element is used by exactly one edge.
	used := map[int]int{}
	for i := range g.Edges {
		for _, id := range g.Edges[i].Elements {
			used[id]++
		}
	}
	drivable := 0
	for _, e := range city.DB.Elements() {
		if e.Class == digiroad.ClassPedestrian {
			continue
		}
		drivable++
		if used[e.ID] != 1 {
			t.Fatalf("element %d used %d times", e.ID, used[e.ID])
		}
	}
	if len(used) != drivable {
		t.Fatalf("used %d elements, want %d", len(used), drivable)
	}
	// Edge geometry endpoints must coincide with node positions.
	for i := range g.Edges {
		e := &g.Edges[i]
		if e.Geom[0].Dist(g.Nodes[e.From].Pos) > 0.02 {
			t.Fatalf("edge %d start detached from node", e.ID)
		}
		if e.Geom[len(e.Geom)-1].Dist(g.Nodes[e.To].Pos) > 0.02 {
			t.Fatalf("edge %d end detached from node", e.ID)
		}
	}
	// Every node's incident edge list is consistent.
	for i := range g.Nodes {
		for _, eid := range g.Nodes[i].Edges {
			e := &g.Edges[eid]
			if e.From != g.Nodes[i].ID && e.To != g.Nodes[i].ID {
				t.Fatalf("node %d lists foreign edge %d", i, eid)
			}
		}
	}
}

func TestBuildUsesSegmentedLimits(t *testing.T) {
	db := buildDB(t, []digiroad.TrafficElement{
		el(1, 60, digiroad.FlowBoth, 0, 0, 100, 0),
	})
	// A 30 km/h pocket in the middle of the element.
	if err := db.SetSpeedLimits(1, []digiroad.SpeedLimitRange{
		{FromM: 40, ToM: 60, Kmh: 30},
	}); err != nil {
		t.Fatal(err)
	}
	g, err := Build(db)
	if err != nil {
		t.Fatal(err)
	}
	if g.Edges[0].SpeedLimitKmh != 30 {
		t.Fatalf("edge limit = %f, want 30 from the segmented attribute", g.Edges[0].SpeedLimitKmh)
	}
}

func TestNetworkStats(t *testing.T) {
	g, err := Build(crossDB(t))
	if err != nil {
		t.Fatal(err)
	}
	s := g.Stats()
	if s.Nodes != 5 || s.Edges != 4 || s.Junctions != 1 || s.DeadEnds != 4 {
		t.Fatalf("stats = %+v", s)
	}
	if !almostEq(s.TotalLengthM, 420, 1e-9) {
		t.Fatalf("total length = %f", s.TotalLengthM)
	}
	if s.Components != 1 || !almostEq(s.LargestCompPct, 100, 1e-9) {
		t.Fatalf("components = %+v", s)
	}
	if s.String() == "" {
		t.Fatal("String empty")
	}
}

func TestComponents(t *testing.T) {
	db := buildDB(t, []digiroad.TrafficElement{
		el(1, 40, digiroad.FlowBoth, 0, 0, 100, 0),
		el(2, 40, digiroad.FlowBoth, 1000, 0, 1100, 0),
		el(3, 40, digiroad.FlowBoth, 1100, 0, 1200, 50),
	})
	g, err := Build(db)
	if err != nil {
		t.Fatal(err)
	}
	comps := g.Components()
	if len(comps) != 2 {
		t.Fatalf("components = %d, want 2", len(comps))
	}
	if len(comps[0]) < len(comps[1]) {
		t.Fatal("components not sorted largest first")
	}
	total := 0
	for _, c := range comps {
		total += len(c)
	}
	if total != len(g.Nodes) {
		t.Fatalf("components cover %d nodes of %d", total, len(g.Nodes))
	}
	s := g.Stats()
	if s.Components != 2 {
		t.Fatalf("stats components = %d", s.Components)
	}
}

func TestTriangleInequalityProperty(t *testing.T) {
	g, err := Build(gridDB(t, 6))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 30; trial++ {
		a := NodeID(rng.Intn(len(g.Nodes)))
		b := NodeID(rng.Intn(len(g.Nodes)))
		c := NodeID(rng.Intn(len(g.Nodes)))
		ab, e1 := g.ShortestPath(a, b, nil)
		bc, e2 := g.ShortestPath(b, c, nil)
		ac, e3 := g.ShortestPath(a, c, nil)
		if e1 != nil || e2 != nil || e3 != nil {
			continue
		}
		if ac.Cost > ab.Cost+bc.Cost+1e-9 {
			t.Fatalf("triangle inequality violated: %f > %f + %f", ac.Cost, ab.Cost, bc.Cost)
		}
	}
}

func TestJunctionsIn(t *testing.T) {
	g, err := Build(crossDB(t))
	if err != nil {
		t.Fatal(err)
	}
	if got := len(g.JunctionsIn(geo.R(-10, -10, 10, 10))); got != 1 {
		t.Fatalf("JunctionsIn centre = %d, want 1", got)
	}
	if got := len(g.JunctionsIn(geo.R(500, 500, 600, 600))); got != 0 {
		t.Fatalf("JunctionsIn far = %d, want 0", got)
	}
}
