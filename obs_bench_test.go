package taxitrace

// Observability overhead benchmark: the same fleet workload as
// BenchmarkFleet (columnar layout, binary ingest) run with the
// observability stack off, partially on, and fully on.
//
// The obs=off arm is configured identically to BenchmarkFleet's
// cars=1000/layout=columnar/format=binary arm — a nil tracer, no
// ledger, no registry — so it measures exactly what a disabled tracer
// costs the hot path (the no-op branches in ensureCarTrace/traceStage):
// its throughput must stay within 1% of the pre-observability
// BENCH_fleet.json number for the same arm. obs=lineage prices the
// always-on drop-reason ledger + metrics, obs=sampled prices tracing a
// 10% car sample on top, and obs=traced records every car.
// `make bench-obs` snapshots the comparison into results/BENCH_obs.json
// via cmd/benchfmt.

import (
	"bytes"
	"context"
	"fmt"
	"runtime"
	"testing"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/tracegen"
)

const obsBenchCars = 1000

// obsPipeline builds a fleet pipeline with the given observability
// attachments over the shared benchmark workload seed.
func obsPipeline(b *testing.B, tr *obs.Tracer, lin *obs.Lineage, reg *obs.Registry) *core.Pipeline {
	b.Helper()
	p, err := core.NewPipeline(core.Config{
		Layout:   core.LayoutColumnar,
		CitySeed: fleetSeed,
		Fleet: tracegen.Config{
			Seed:            fleetSeed,
			Cars:            fleetPoolCars,
			TripsPerCar:     fleetTrips,
			GateRunFraction: fleetGateFrac,
		},
		Tracer:  tr,
		Lineage: lin,
		Metrics: reg,
	})
	if err != nil {
		b.Fatal(err)
	}
	return p
}

// BenchmarkFleetObs measures what the observability layer costs on the
// fleet hot path.
func BenchmarkFleetObs(b *testing.B) {
	_, data := fleetEnvironment(b)
	arms := []struct {
		name  string
		build func(b *testing.B) *core.Pipeline
	}{
		// Disabled tracer: nil tracer, no ledger, no registry — the
		// BenchmarkFleet configuration, now with the observability
		// branches compiled into the hot path. The <=1% bound.
		{"off", func(b *testing.B) *core.Pipeline {
			return obsPipeline(b, nil, nil, nil)
		}},
		// The always-on accounting: metrics + lineage ledger, no tracer.
		{"lineage", func(b *testing.B) *core.Pipeline {
			reg := obs.NewRegistry()
			return obsPipeline(b, nil, obs.NewLineage(reg), reg)
		}},
		// A production trace: 10% of cars sampled deterministically.
		{"sampled", func(b *testing.B) *core.Pipeline {
			reg := obs.NewRegistry()
			tr := obs.NewTracer(obs.TracerConfig{Capacity: 1 << 14, SampleFraction: 0.1, Seed: fleetSeed})
			return obsPipeline(b, tr, obs.NewLineage(reg), reg)
		}},
		// Every car traced: the upper bound.
		{"traced", func(b *testing.B) *core.Pipeline {
			reg := obs.NewRegistry()
			tr := obs.NewTracer(obs.TracerConfig{Capacity: 1 << 14, SampleFraction: 1, Seed: fleetSeed})
			return obsPipeline(b, tr, obs.NewLineage(reg), reg)
		}},
	}
	for _, arm := range arms {
		arm := arm
		name := fmt.Sprintf("cars=%d/obs=%s", obsBenchCars, arm.name)
		b.Run(name, func(b *testing.B) {
			p := arm.build(b)
			proc := func(ctx context.Context, car int) (core.CarResult, error) {
				return p.ProcessBinaryContext(ctx, car, bytes.NewReader(data.bin[car-1]))
			}
			points := fleetPointCount(data, obsBenchCars)
			runtime.GC()
			b.ReportAllocs()
			b.ResetTimer()
			transitions := 0
			for i := 0; i < b.N; i++ {
				transitions = runFleet(b, obsBenchCars, proc)
			}
			b.StopTimer()
			if transitions == 0 {
				b.Fatal("degenerate fleet: no accepted transitions")
			}
			sec := b.Elapsed().Seconds()
			b.ReportMetric(float64(obsBenchCars*b.N)/sec, "cars/sec")
			b.ReportMetric(float64(points*b.N)/sec, "points/sec")
		})
	}
}
