package taxitrace

import (
	"bytes"
	"context"
	"encoding/json"
	"sort"
	"testing"

	"repro/internal/grid"
	"repro/internal/sink"
	"repro/internal/trace"
	"repro/internal/tracegen"
)

func diffConfig(layout Layout) Config {
	return Config{
		Layout:   layout,
		CitySeed: 42,
		Fleet:    tracegen.Config{Seed: 42, Cars: 3, TripsPerCar: 8, GateRunFraction: 0.35},
	}
}

// runTraces pushes externally-serialised trips through the processing
// stages, the incremental aggregation sink, and the grid/mixed-model
// analysis, returning one JSON blob of everything observable: per-car
// results, the sealed snapshot, and the fitted model. proc runs one
// car, however the arm under test ingests it.
func runTraces(t *testing.T, cfg Config, cars []int, proc func(p *Pipeline, car int) (CarResult, error)) []byte {
	t.Helper()
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}

	g, err := sink.GridForPipeline(p)
	if err != nil {
		t.Fatal(err)
	}
	snk, err := sink.New(sink.Config{Grid: g, Gates: p.Selector.GateNames()})
	if err != nil {
		t.Fatal(err)
	}
	res := &Result{}
	for _, car := range cars {
		cr, err := proc(p, car)
		if err != nil {
			t.Fatalf("car %d: %v", car, err)
		}
		res.Cars = append(res.Cars, cr)
	}
	snk.AbsorbResult(res)
	snap := snk.Seal()

	recs := res.Transitions()
	if len(recs) == 0 {
		t.Fatal("degenerate differential: no transitions")
	}
	_, lmm, err := p.GridAnalysis(recs)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := json.Marshal(struct {
		Result   *Result
		Snapshot any
		Model    any
	}{res, flattenSnapshot(snap), lmm})
	if err != nil {
		t.Fatal(err)
	}
	return blob
}

// flattenSnapshot rewrites the snapshot's struct-keyed maps as ordered
// slices so the whole epoch serialises deterministically (PublishedAt,
// a wall-clock stamp, is deliberately dropped).
func flattenSnapshot(s *sink.Snapshot) any {
	type cell struct {
		ID    grid.CellID
		Stats sink.CellStats
	}
	type od struct {
		Key   string
		Stats sink.ODStats
	}
	out := struct {
		CarsIngested, CarsFailed, Points int
		Complete                         bool
		Gates                            []string
		Cells                            []cell
		OD                               []od
	}{
		CarsIngested: s.CarsIngested, CarsFailed: s.CarsFailed,
		Points: s.Points, Complete: s.Complete, Gates: s.Gates,
	}
	for _, id := range s.CellIDs() {
		out.Cells = append(out.Cells, cell{id, s.Cells[id]})
	}
	for _, dir := range s.Directions() {
		out.OD = append(out.OD, od{dir.String(), s.OD[dir]})
	}
	return out
}

// TestFormatAndLayoutDifferential is the end-to-end format/layout
// proof: one fleet serialised to CSV and to the binary trace format,
// pushed through the pipeline under both memory layouts and both
// binary ingest paths (row materialisation vs the direct columnar
// stream), must produce byte-identical results — per-car outputs, the
// sealed serving snapshot, and the grid/OD mixed-model fit.
func TestFormatAndLayoutDifferential(t *testing.T) {
	gen, err := New(diffConfig(LayoutAuto))
	if err != nil {
		t.Fatal(err)
	}
	fleet := gen.Gen.Fleet()
	proj := gen.City.DB.Proj
	var csvBuf, binBuf bytes.Buffer
	if err := trace.WriteCSV(&csvBuf, fleet, proj); err != nil {
		t.Fatal(err)
	}
	if err := trace.WriteBinary(&binBuf, fleet, proj); err != nil {
		t.Fatal(err)
	}

	// Group the fleet per car and encode each car's standalone binary
	// stream for the ProcessBinaryContext arm.
	byCar := map[int][]*trace.Trip{}
	for _, tr := range fleet {
		byCar[tr.CarID] = append(byCar[tr.CarID], tr)
	}
	cars := make([]int, 0, len(byCar))
	carBin := map[int][]byte{}
	for car := range byCar {
		cars = append(cars, car)
		var buf bytes.Buffer
		if err := trace.WriteBinary(&buf, byCar[car], proj); err != nil {
			t.Fatal(err)
		}
		carBin[car] = buf.Bytes()
	}
	sort.Ints(cars)

	groupRead := func(read func() ([]*trace.Trip, error)) func(p *Pipeline, car int) (CarResult, error) {
		return func(p *Pipeline, car int) (CarResult, error) {
			trips, err := read()
			if err != nil {
				return CarResult{}, err
			}
			var mine []*trace.Trip
			for _, tr := range trips {
				if tr.CarID == car {
					mine = append(mine, tr)
				}
			}
			return p.ProcessContext(context.Background(), car, mine)
		}
	}
	procCSV := groupRead(func() ([]*trace.Trip, error) {
		return trace.ReadCSV(bytes.NewReader(csvBuf.Bytes()), proj)
	})
	procBin := groupRead(func() ([]*trace.Trip, error) {
		return trace.ReadBinary(bytes.NewReader(binBuf.Bytes()), proj)
	})
	procBinDirect := func(p *Pipeline, car int) (CarResult, error) {
		return p.ProcessBinaryContext(context.Background(), car, bytes.NewReader(carBin[car]))
	}

	fromCSV := runTraces(t, diffConfig(LayoutAuto), cars, procCSV)
	fromBin := runTraces(t, diffConfig(LayoutAuto), cars, procBin)
	if !bytes.Equal(fromCSV, fromBin) {
		t.Fatalf("binary input diverged from CSV input:\ncsv %d bytes, binary %d bytes",
			len(fromCSV), len(fromBin))
	}
	fromBinDirect := runTraces(t, diffConfig(LayoutAuto), cars, procBinDirect)
	if !bytes.Equal(fromCSV, fromBinDirect) {
		t.Fatal("direct columnar binary ingest diverged from CSV input")
	}
	fromBinLegacy := runTraces(t, diffConfig(LayoutLegacy), cars, procBin)
	if !bytes.Equal(fromCSV, fromBinLegacy) {
		t.Fatal("legacy layout over binary input diverged from columnar over CSV")
	}
	fromBinDirectLegacy := runTraces(t, diffConfig(LayoutLegacy), cars, procBinDirect)
	if !bytes.Equal(fromCSV, fromBinDirectLegacy) {
		t.Fatal("legacy-layout ProcessBinaryContext fallback diverged from CSV input")
	}
}
