package taxitrace

// Fleet-scale benchmark: a parameterized 1k-100k synthetic fleet built
// by replicating a simulated car pool, ingested per car from encoded
// trace blobs and processed through the full per-car pipeline under
// the fleet runner. The matrix crosses the two point-storage layouts
// (columnar arena vs legacy row slices) with the two trace encodings
// (CSV vs binary). `make bench-fleet` snapshots the results — together
// with the frozen pre-columnar baseline in results/bench_fleet_seed.txt
// (BenchmarkFleetSeed) — into results/BENCH_fleet.json via cmd/benchfmt,
// reporting cars/sec, points/sec and allocs/op.

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/runner"
	"repro/internal/trace"
	"repro/internal/tracegen"
)

// Fleet workload definition. The pool is a small set of genuinely
// simulated cars; the fleet replicates it with re-stamped car and trip
// IDs, which preserves the per-car work profile while keeping setup
// time independent of fleet size.
const (
	fleetSeed     = 42
	fleetPoolCars = 32
	fleetTrips    = 3    // engine-on trips per car
	fleetGateFrac = 0.10 // tracegen default: fleet-scale gate traffic share
)

// fleetSizes are the benchmarked fleet sizes; FLEET_CARS=N adds a
// custom (e.g. 100000-car) size.
func fleetSizes() []int {
	sizes := []int{1000, 10000}
	if s := os.Getenv("FLEET_CARS"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			sizes = append(sizes, n)
		}
	}
	return sizes
}

type fleetData struct {
	csv    [][]byte // per-car CSV blob, header included
	bin    [][]byte // per-car binary trace blob
	points int      // total route points across the fleet
	proj   *geo.Projection
}

var (
	fleetOnce  sync.Once
	fleet      *fleetData
	fleetPipes map[core.Layout]*core.Pipeline
	fleetErr   error
)

// fleetEnvironment builds (once) one shared pipeline per storage layout
// and the encoded per-car trace blobs for the largest requested fleet
// size. Both pipelines are built from the same seed, so they share the
// workload exactly; only Config.Layout differs.
func fleetEnvironment(b *testing.B) (map[core.Layout]*core.Pipeline, *fleetData) {
	b.Helper()
	fleetOnce.Do(func() {
		maxCars := 0
		for _, n := range fleetSizes() {
			if n > maxCars {
				maxCars = n
			}
		}
		fleetPipes = map[core.Layout]*core.Pipeline{}
		for _, layout := range []core.Layout{core.LayoutColumnar, core.LayoutLegacy} {
			fleetPipes[layout], fleetErr = core.NewPipeline(core.Config{
				Layout:   layout,
				CitySeed: fleetSeed,
				Fleet: tracegen.Config{
					Seed:            fleetSeed,
					Cars:            fleetPoolCars,
					TripsPerCar:     fleetTrips,
					GateRunFraction: fleetGateFrac,
				},
			})
			if fleetErr != nil {
				return
			}
		}
		fleet, fleetErr = buildFleet(fleetPipes[core.LayoutColumnar], maxCars)
	})
	if fleetErr != nil {
		b.Fatal(fleetErr)
	}
	return fleetPipes, fleet
}

// buildFleet replicates the simulated pool across cars 1..n and
// encodes each car's trips as standalone CSV and binary blobs.
func buildFleet(p *core.Pipeline, n int) (*fleetData, error) {
	proj := p.City.DB.Proj
	pool := make([][]*trace.Trip, fleetPoolCars)
	for i := range pool {
		pool[i] = p.Gen.CarTrips(i + 1)
	}
	data := &fleetData{csv: make([][]byte, n), bin: make([][]byte, n), proj: proj}
	var buf bytes.Buffer
	for car := 1; car <= n; car++ {
		src := pool[(car-1)%fleetPoolCars]
		trips := restampCar(src, car)
		buf.Reset()
		if err := trace.WriteCSV(&buf, trips, proj); err != nil {
			return nil, err
		}
		data.csv[car-1] = append([]byte(nil), buf.Bytes()...)
		buf.Reset()
		if err := trace.WriteBinary(&buf, trips, proj); err != nil {
			return nil, err
		}
		data.bin[car-1] = append([]byte(nil), buf.Bytes()...)
		for _, t := range trips {
			data.points += len(t.Points)
		}
	}
	return data, nil
}

// restampCar deep-copies src trips under a new car ID, keeping the
// generator's carID*1e6+i trip-ID convention so IDs stay fleet-unique.
func restampCar(src []*trace.Trip, car int) []*trace.Trip {
	out := make([]*trace.Trip, len(src))
	for i, t := range src {
		c := t.Clone()
		c.CarID = car
		c.ID = int64(car)*1_000_000 + t.ID%1_000_000
		for j := range c.Points {
			c.Points[j].TripID = c.ID
		}
		out[i] = c
	}
	return out
}

// runFleet pushes cars 1..n through the fleet runner: per-car ingest
// from the encoded blob, then the full processing pipeline. Returns
// total accepted transitions as a liveness check.
func runFleet(b *testing.B, n int, proc func(ctx context.Context, car int) (core.CarResult, error)) int {
	b.Helper()
	st := runner.Run(context.Background(), runner.Config{Workers: runtime.GOMAXPROCS(0)}, n,
		func(ctx context.Context, car int) (int, error) {
			cr, err := proc(ctx, car)
			if err != nil {
				return 0, err
			}
			return len(cr.Transitions), nil
		})
	total := 0
	for ev := range st.Events() {
		if ev.Err != nil {
			b.Fatal(ev.Err)
		}
		total += ev.Result
	}
	if err := st.Err(); err != nil {
		b.Fatal(err)
	}
	return total
}

// BenchmarkFleet is the fleet-scale matrix: cars × layout × format.
// The layout=legacy/format=csv arm reproduces the pre-columnar seed
// configuration (compare against BenchmarkFleetSeed in
// results/bench_fleet_seed.txt); layout=columnar/format=binary is the
// full optimisation.
func BenchmarkFleet(b *testing.B) {
	pipes, data := fleetEnvironment(b)
	for _, n := range fleetSizes() {
		n := n
		for _, lay := range []struct {
			name   string
			layout core.Layout
		}{
			{"columnar", core.LayoutColumnar},
			{"legacy", core.LayoutLegacy},
		} {
			lay := lay
			for _, format := range []string{"csv", "binary"} {
				format := format
				name := fmt.Sprintf("cars=%d/layout=%s/format=%s", n, lay.name, format)
				b.Run(name, func(b *testing.B) {
					p := pipes[lay.layout]
					// The binary arm streams records straight into the
					// pooled columnar arena (ProcessBinaryContext); the
					// CSV arm materialises row trips first, as any
					// row-oriented ingest must.
					proc := func(ctx context.Context, car int) (core.CarResult, error) {
						trips, err := trace.ReadCSV(bytes.NewReader(data.csv[car-1]), data.proj)
						if err != nil {
							return core.CarResult{}, err
						}
						return p.ProcessContext(ctx, car, trips)
					}
					if format == "binary" {
						proc = func(ctx context.Context, car int) (core.CarResult, error) {
							return p.ProcessBinaryContext(ctx, car, bytes.NewReader(data.bin[car-1]))
						}
					}
					points := fleetPointCount(data, n)
					runtime.GC()
					b.ReportAllocs()
					b.ResetTimer()
					transitions := 0
					for i := 0; i < b.N; i++ {
						transitions = runFleet(b, n, proc)
					}
					b.StopTimer()
					if transitions == 0 {
						b.Fatal("degenerate fleet: no accepted transitions")
					}
					sec := b.Elapsed().Seconds()
					b.ReportMetric(float64(n*b.N)/sec, "cars/sec")
					b.ReportMetric(float64(points*b.N)/sec, "points/sec")
				})
			}
		}
	}
}

// fleetPointCount counts route points over the first n cars.
func fleetPointCount(data *fleetData, n int) int {
	if n == len(data.csv) {
		return data.points
	}
	// Re-derive from blob row counts: every row but the header is one point.
	total := 0
	for _, blob := range data.csv[:n] {
		total += bytes.Count(blob, []byte{'\n'}) - 1
	}
	return total
}

// BenchmarkFleetIngestCSV isolates per-car CSV parsing (the satellite
// ReadCSV allocation work is measured against this).
func BenchmarkFleetIngestCSV(b *testing.B) {
	_, data := fleetEnvironment(b)
	blob := data.csv[0]
	pts := bytes.Count(blob, []byte{'\n'}) - 1
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		trips, err := trace.ReadCSV(bytes.NewReader(blob), data.proj)
		if err != nil {
			b.Fatal(err)
		}
		if len(trips) == 0 {
			b.Fatal("no trips")
		}
	}
	b.ReportMetric(float64(pts), "points")
}

// BenchmarkFleetIngestBinary is the binary-format counterpart of
// BenchmarkFleetIngestCSV: same car, same points, the length-prefixed
// fixed-width record format.
func BenchmarkFleetIngestBinary(b *testing.B) {
	_, data := fleetEnvironment(b)
	blob := data.bin[0]
	pts := bytes.Count(data.csv[0], []byte{'\n'}) - 1
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		trips, err := trace.ReadBinary(bytes.NewReader(blob), data.proj)
		if err != nil {
			b.Fatal(err)
		}
		if len(trips) == 0 {
			b.Fatal("no trips")
		}
	}
	b.ReportMetric(float64(pts), "points")
}
