package taxitrace

import (
	"context"
	"testing"

	"repro/internal/tracegen"
)

// TestPublicAPIQuickstart exercises the facade exactly the way the
// package documentation shows.
func TestPublicAPIQuickstart(t *testing.T) {
	p, err := New(Config{
		CitySeed: 42,
		Fleet:    tracegen.Config{Seed: 42, Cars: 1, TripsPerCar: 8, GateRunFraction: 0.5},
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	res, err := p.RunContext(context.Background())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	recs := res.Transitions()
	if len(recs) == 0 {
		t.Fatal("no transitions from the quickstart configuration")
	}
	speeds := PointSpeeds(recs)
	if len(speeds) == 0 {
		t.Fatal("no point speeds")
	}
	low := 0
	for _, s := range speeds {
		if s < LowSpeedKmh {
			low++
		}
	}
	if low == 0 {
		t.Fatal("city driving should include low-speed points")
	}
	if sp := TransitionSpeedPoints(recs[0]); len(sp) < 2 {
		t.Fatalf("TransitionSpeedPoints = %d", len(sp))
	}
	if _, _, err := p.GridAnalysis(recs); err != nil {
		t.Fatalf("GridAnalysis: %v", err)
	}
}
