// Quickstart: build the pipeline, run it over a small simulated fleet,
// and print what survived each stage — the minimal end-to-end use of
// the public API.
package main

import (
	"context"
	"fmt"
	"log"

	"repro"
	"repro/internal/tracegen"
)

func main() {
	log.SetFlags(0)

	// One seed controls everything: the synthetic city, the fleet, the
	// weather. The same seed always reproduces the same results.
	p, err := taxitrace.New(taxitrace.Config{
		CitySeed: 7,
		Fleet: tracegen.Config{
			Seed:            7,
			Cars:            2,
			TripsPerCar:     15,
			GateRunFraction: 0.3,
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	res, err := p.RunContext(context.Background())
	if err != nil {
		log.Fatal(err)
	}

	for _, cr := range res.Cars {
		fmt.Printf("taxi %d: %d raw engine-on trips -> %d segments -> %d accepted transitions\n",
			cr.Car, cr.RawTrips, cr.Funnel.TripSegments, cr.Funnel.PostFiltered)
	}

	recs := res.Transitions()
	fmt.Printf("\n%d transitions between the T, S and L gates:\n", len(recs))
	for _, rec := range recs {
		fmt.Printf("  %-4s %.2f km, %4.1f min, low speed %4.1f%%, %d traffic lights, %.0f ml fuel\n",
			rec.Direction(), rec.RouteDistKm, rec.RouteTimeH*60,
			rec.LowSpeedPct, rec.Attrs.TrafficLights, rec.FuelMl)
	}

	speeds := taxitrace.PointSpeeds(recs)
	low := 0
	for _, s := range speeds {
		if s < taxitrace.LowSpeedKmh {
			low++
		}
	}
	fmt.Printf("\n%d measured point speeds, %.1f%% below %d km/h\n",
		len(speeds), 100*float64(low)/float64(len(speeds)), taxitrace.LowSpeedKmh)
}
