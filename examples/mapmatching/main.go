// Map-matching: align noisy, sparsely sampled GPS points onto the road
// network with the paper's incremental algorithm (with digital-map
// driving-direction hints and Dijkstra gap filling), and compare it
// against the HMM/Viterbi baseline on the same traces.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"
	"time"

	"repro/internal/digiroad"
	"repro/internal/geo"
	"repro/internal/mapmatch"
	"repro/internal/roadnet"
	"repro/internal/trace"
)

func main() {
	log.SetFlags(0)
	city := digiroad.SynthesizeOulu(digiroad.SynthConfig{Seed: 42})
	graph, err := roadnet.Build(city.DB)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("network: %d nodes, %d edges\n\n", len(graph.Nodes), len(graph.Edges))

	inc := mapmatch.NewIncremental(graph, mapmatch.DefaultConfig())
	noHints := mapmatch.DefaultConfig()
	noHints.UseDirectionHints = false
	incPlain := mapmatch.NewIncremental(graph, noHints)
	hmm := mapmatch.NewHMM(graph, mapmatch.HMMConfig{})

	rng := rand.New(rand.NewSource(9))
	matchers := []struct {
		name  string
		match func([]trace.RoutePoint) (*mapmatch.Result, error)
	}{
		{"incremental+hints", inc.Match},
		{"incremental-plain", incPlain.Match},
		{"hmm-viterbi", hmm.Match},
	}
	errSum := map[string]float64{}
	gapSum := map[string]int{}
	trials := 15

	for trial := 0; trial < trials; trial++ {
		truth, pts := randomDrive(rng, graph)
		fmt.Printf("trace %2d: %4.0f m truth, %d noisy points\n",
			trial+1, truth.Length(), len(pts))
		for _, m := range matchers {
			res, err := m.match(pts)
			if err != nil {
				fmt.Printf("  %-18s failed: %v\n", m.name, err)
				continue
			}
			lenErr := math.Abs(res.Geometry.Length() - truth.Length())
			errSum[m.name] += lenErr
			gapSum[m.name] += res.GapsFilled
			fmt.Printf("  %-18s matched %.0f%%, route %4.0f m (off by %3.0f m), %d gaps filled\n",
				m.name, 100*res.MatchedFraction, res.Geometry.Length(), lenErr, res.GapsFilled)
		}
	}
	fmt.Println("\nmean route-length error across traces:")
	for _, m := range matchers {
		fmt.Printf("  %-18s %5.1f m (gap fills: %d)\n",
			m.name, errSum[m.name]/float64(trials), gapSum[m.name])
	}
}

// randomDrive picks a random route on the graph and samples sparse,
// noisy device points along it (the paper's event-triggered points are
// 50-120 m apart in the city).
func randomDrive(rng *rand.Rand, g *roadnet.Graph) (geo.Polyline, []trace.RoutePoint) {
	t0 := time.Date(2013, 2, 1, 9, 0, 0, 0, time.UTC)
	for {
		from := roadnet.NodeID(rng.Intn(len(g.Nodes)))
		to := roadnet.NodeID(rng.Intn(len(g.Nodes)))
		path, err := g.ShortestPath(from, to, roadnet.TravelTimeWeight)
		if err != nil || path.Length < 1000 || path.Length > 4000 {
			continue
		}
		truth := path.Geometry()
		var pts []trace.RoutePoint
		i := 0
		for d := 0.0; d <= truth.Length(); d += 60 + rng.Float64()*60 {
			p := truth.PointAt(d)
			pts = append(pts, trace.RoutePoint{
				PointID: i + 1,
				TripID:  1,
				Pos:     geo.V(p.X+rng.NormFloat64()*5, p.Y+rng.NormFloat64()*5),
				Time:    t0.Add(time.Duration(i*12) * time.Second),
			})
			i++
		}
		if len(pts) < 5 {
			continue
		}
		return truth, pts
	}
}
