// Mixed model: the workflow behind the paper's Figures 7-9 — aggregate
// point speeds on the 200 m grid, fit the per-cell random-intercept
// model by REML, and inspect the BLUP predictions: how much each cell's
// expected speed deviates from the city-wide mean, with shrinkage for
// sparse cells.
package main

import (
	"context"
	"fmt"
	"log"
	"math"
	"sort"

	"repro"
	"repro/internal/stats"
	"repro/internal/tracegen"
)

func main() {
	log.SetFlags(0)
	p, err := taxitrace.New(taxitrace.Config{
		CitySeed: 42,
		Fleet: tracegen.Config{
			Seed:            42,
			Cars:            4,
			TripsPerCar:     60,
			GateRunFraction: 0.25,
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	res, err := p.RunContext(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	agg, lmm, err := p.GridAnalysis(res.Transitions())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("observations: %d point speeds in %d non-empty cells\n", lmm.NObs, agg.NumNonEmpty())
	fmt.Printf("grand mean   : %6.2f km/h\n", lmm.Mu)
	fmt.Printf("sigma_a (between cells): %5.2f km/h\n", math.Sqrt(lmm.SigmaA2))
	fmt.Printf("sigma   (within cells) : %5.2f km/h\n", math.Sqrt(lmm.Sigma2))

	// Fig 8: the strongest effects with confidence limits.
	effects := append([]stats.GroupEffect(nil), lmm.Groups...)
	sort.Slice(effects, func(i, j int) bool { return effects[i].BLUP < effects[j].BLUP })
	fmt.Println("\nslowest cells (BLUP +/- 1.96 SE):")
	for _, e := range effects[:min(5, len(effects))] {
		fmt.Printf("  %-10s n=%-4d %+6.2f km/h  [%+6.2f, %+6.2f]\n",
			e.Name, e.N, e.BLUP, e.BLUP-1.96*e.SE, e.BLUP+1.96*e.SE)
	}
	fmt.Println("fastest cells:")
	for _, e := range effects[max(0, len(effects)-5):] {
		fmt.Printf("  %-10s n=%-4d %+6.2f km/h  [%+6.2f, %+6.2f]\n",
			e.Name, e.N, e.BLUP, e.BLUP-1.96*e.SE, e.BLUP+1.96*e.SE)
	}

	// The regularisation at work: raw deviation vs BLUP for the
	// sparsest cell — the mixed model borrows strength from the rest.
	sparse := effects[0]
	for _, e := range effects {
		if e.N < sparse.N {
			sparse = e
		}
	}
	fmt.Printf("\nshrinkage example: cell %s has only %d observations;\n", sparse.Name, sparse.N)
	fmt.Printf("raw deviation %+.2f km/h is shrunk to BLUP %+.2f km/h\n",
		sparse.Mean-lmm.Mu, sparse.BLUP)

	// Fig 7: is the Gaussian prior justified? Central QQ points should
	// hug the line with slope sigma_a.
	qq := stats.NormalQQ(lmm.BLUPs())
	fmt.Println("\nQQ check (theoretical quantile -> sample):")
	for _, i := range []int{len(qq) / 10, len(qq) / 2, len(qq) * 9 / 10} {
		fmt.Printf("  %+5.2f -> %+6.2f\n", qq[i].Theoretical, qq[i].Sample)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
