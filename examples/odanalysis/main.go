// OD analysis: the workflow behind the paper's Tables 3 and 4 — select
// origin-destination transitions between the city gates with thick
// geometry, then compare the studied directions on low-speed share,
// normal-speed share, and map attributes.
//
// The interesting output is the contrast the paper reports: S-T and
// T-S cross the crowded eastern core and accumulate far more low-speed
// time than T-L and L-T, even though the traffic-light counts are
// almost the same.
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"repro"
	"repro/internal/stats"
	"repro/internal/tracegen"
)

func main() {
	log.SetFlags(0)
	p, err := taxitrace.New(taxitrace.Config{
		CitySeed: 42,
		Fleet: tracegen.Config{
			Seed:            42,
			Cars:            4,
			TripsPerCar:     60,
			GateRunFraction: 0.25,
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	res, err := p.RunContext(context.Background())
	if err != nil {
		log.Fatal(err)
	}

	// Table 3: the selection funnel.
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "car\tsegments\tgate-filtered\ttransitions\twithin centre\taccepted")
	for _, cr := range res.Cars {
		f := cr.Funnel
		fmt.Fprintf(w, "%d\t%d\t%d\t%d\t%d\t%d\n",
			f.Car, f.TripSegments, f.Filtered, f.Transitions, f.WithinCentre, f.PostFiltered)
	}
	w.Flush()

	// Table 4: per-direction summaries.
	byDir := map[string][]*taxitrace.TransitionRecord{}
	for _, rec := range res.Transitions() {
		byDir[rec.Direction()] = append(byDir[rec.Direction()], rec)
	}
	fmt.Println("\nper-direction comparison (mean over transitions):")
	w = tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "dir\tn\ttime(min)\tdist(km)\tlow-speed%\tnormal-speed%\tlights\tjunctions\tfuel(ml)")
	for _, dir := range []string{"T-S", "S-T", "T-L", "L-T"} {
		recs := byDir[dir]
		if len(recs) == 0 {
			continue
		}
		var t, d, low, normal, lights, junc, fuel []float64
		for _, r := range recs {
			t = append(t, r.RouteTimeH*60)
			d = append(d, r.RouteDistKm)
			low = append(low, r.LowSpeedPct)
			normal = append(normal, r.NormalSpeedPct)
			lights = append(lights, float64(r.Attrs.TrafficLights))
			junc = append(junc, float64(r.Attrs.Junctions))
			fuel = append(fuel, r.FuelMl)
		}
		fmt.Fprintf(w, "%s\t%d\t%.1f\t%.2f\t%.1f\t%.1f\t%.1f\t%.1f\t%.0f\n",
			dir, len(recs), stats.Mean(t), stats.Mean(d), stats.Mean(low),
			stats.Mean(normal), stats.Mean(lights), stats.Mean(junc), stats.Mean(fuel))
	}
	w.Flush()

	busy := (mean(byDir["T-S"], lowPct) + mean(byDir["S-T"], lowPct)) / 2
	calm := (mean(byDir["T-L"], lowPct) + mean(byDir["L-T"], lowPct)) / 2
	fmt.Printf("\nS-T/T-S low-speed share %.1f%% vs T-L/L-T %.1f%% — the paper's Table 4 shape.\n",
		busy, calm)
}

func lowPct(r *taxitrace.TransitionRecord) float64 { return r.LowSpeedPct }

func mean(recs []*taxitrace.TransitionRecord, f func(*taxitrace.TransitionRecord) float64) float64 {
	if len(recs) == 0 {
		return 0
	}
	var s float64
	for _, r := range recs {
		s += f(r)
	}
	return s / float64(len(recs))
}
