// Driving coach: the post-driving analysis prototype the paper's
// conclusions describe (ref [31]) — per-trip eco scores with concrete
// suggestions, and the eco-routing comparison across the route variants
// drivers actually chose between each origin-destination pair.
package main

import (
	"context"
	"fmt"
	"log"
	"sort"

	"repro"
	"repro/internal/coach"
	"repro/internal/routes"
	"repro/internal/tracegen"
)

func main() {
	log.SetFlags(0)
	p, err := taxitrace.New(taxitrace.Config{
		CitySeed: 42,
		Fleet: tracegen.Config{
			Seed: 42, Cars: 3, TripsPerCar: 50, GateRunFraction: 0.3,
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	res, err := p.RunContext(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	recs := res.Transitions()
	c := coach.New(p.Graph)

	// Per-trip reports, best and worst.
	reports := make([]coach.TripReport, len(recs))
	for i, rec := range recs {
		reports[i] = c.Analyze(rec)
	}
	sort.Slice(reports, func(i, j int) bool { return reports[i].EcoScore > reports[j].EcoScore })

	fmt.Printf("analysed %d trips\n\nmost fuel-efficient trip (score %.0f):\n",
		len(reports), reports[0].EcoScore)
	show(reports[0])
	worst := reports[len(reports)-1]
	fmt.Printf("\nleast fuel-efficient trip (score %.0f):\n", worst.EcoScore)
	show(worst)

	// Eco-routing: route variants per direction.
	options, err := coach.CompareRoutes(recs, routes.Config{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nroute variants driven per direction (eco-best marked *):")
	fmt.Printf("%-5s %-8s %6s %10s %10s %9s %8s\n",
		"dir", "variant", "trips", "fuel(ml)", "time(min)", "dist(km)", "low%")
	for _, o := range options {
		mark := " "
		if o.EcoBest {
			mark = "*"
		}
		fmt.Printf("%-5s %-8d %6d %9.0f%s %10.1f %9.2f %8.1f\n",
			o.Direction, o.Variant, o.Trips, o.MeanFuelMl, mark,
			o.MeanTimeMin, o.MeanDistKm, o.MeanLowPct)
	}
}

func show(r coach.TripReport) {
	fmt.Printf("  %s %s: %.2f km, %.1f min, %.0f ml (%.0f ml/km)\n",
		r.Key, r.Direction, r.DistanceKm, r.DurationMin, r.FuelMl, r.FuelPerKm)
	fmt.Printf("  idle %.0f%%, low speed %.0f%%, detour factor %.2f\n",
		r.IdlePct, r.LowSpeedPct, r.DetourFactor)
	for _, s := range r.Suggestions {
		fmt.Printf("  - %s\n", s)
	}
}
