// Binary traces: write a simulated fleet to the compact binary trace
// format, read it back, and run the pipeline over the recorded data —
// the recorded-data workflow of cmd/taxiflow in library form. The
// same fleet is also round-tripped through CSV to show the two
// encodings feed the pipeline identically.
package main

import (
	"bytes"
	"context"
	"fmt"
	"log"

	"repro"
	"repro/internal/trace"
	"repro/internal/tracegen"
)

func main() {
	log.SetFlags(0)

	p, err := taxitrace.New(taxitrace.Config{
		CitySeed: 7,
		Fleet: tracegen.Config{
			Seed:            7,
			Cars:            2,
			TripsPerCar:     15,
			GateRunFraction: 0.3,
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	// "Record" the fleet: in a real deployment this is tracegen
	// -format=binary writing traces.bin; here both encodings go to
	// memory so their sizes can be compared directly.
	fleet := p.Gen.Fleet()
	proj := p.City.DB.Proj
	var bin, csv bytes.Buffer
	if err := trace.WriteBinary(&bin, fleet, proj); err != nil {
		log.Fatal(err)
	}
	if err := trace.WriteCSV(&csv, fleet, proj); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d trips recorded: %d bytes binary vs %d bytes CSV (%.1fx smaller)\n",
		len(fleet), bin.Len(), csv.Len(), float64(csv.Len())/float64(bin.Len()))

	// Load the recording and push each car through the pipeline, as
	// taxiflow -traces traces.bin would.
	trips, err := trace.ReadBinary(bytes.NewReader(bin.Bytes()), proj)
	if err != nil {
		log.Fatal(err)
	}
	byCar := map[int][]*trace.Trip{}
	cars := []int{}
	for _, t := range trips {
		if len(byCar[t.CarID]) == 0 {
			cars = append(cars, t.CarID)
		}
		byCar[t.CarID] = append(byCar[t.CarID], t)
	}

	total := 0
	for _, car := range cars {
		// Each car's recording is a standalone binary stream (one file
		// per vehicle, as a recording fleet would produce), so it can be
		// fed straight into the pipeline's pooled columnar arena with
		// ProcessBinaryContext — no row trips are materialised at all.
		var carBin bytes.Buffer
		if err := trace.WriteBinary(&carBin, byCar[car], proj); err != nil {
			log.Fatal(err)
		}
		cr, err := p.ProcessBinaryContext(context.Background(), car, &carBin)
		if err != nil {
			log.Fatal(err)
		}
		total += len(cr.Transitions)
		fmt.Printf("taxi %d: %d recorded trips -> %d accepted transitions\n",
			car, len(byCar[car]), len(cr.Transitions))
	}
	fmt.Printf("\n%d transitions from the binary recording\n", total)
}
