// Data cleaning: the paper's §IV-B stage in isolation. Builds a trip
// whose route points arrive shuffled with corrupted metadata and a GPS
// spike, then shows how the min-total-distance rule, the validity
// filters, and gap interpolation recover a reliable trajectory.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"repro/internal/clean"
	"repro/internal/geo"
	"repro/internal/trace"
)

func main() {
	log.SetFlags(0)
	rng := rand.New(rand.NewSource(4))
	t0 := time.Date(2012, 11, 3, 14, 0, 0, 0, time.UTC)

	// Ground truth: an L-shaped drive, one point every 20 s.
	truth := geo.Line(0, 0, 1200, 0, 1200, 800)
	var tr trace.Trip
	tr.ID, tr.CarID = 101, 1
	for i, d := 0, 0.0; d <= truth.Length(); i, d = i+1, d+160 {
		p := truth.PointAt(d)
		tr.Points = append(tr.Points, trace.RoutePoint{
			PointID: i + 1, TripID: 101,
			Pos:      geo.V(p.X+rng.NormFloat64()*4, p.Y+rng.NormFloat64()*4),
			Time:     t0.Add(time.Duration(i) * 20 * time.Second),
			SpeedKmh: 30,
			FuelMl:   float64(i) * 14,
			DistM:    d,
		})
	}
	wantLen := trace.PathLength(tr.Points)
	fmt.Printf("ground truth: %d points, %.0f m\n\n", len(tr.Points), wantLen)

	// Corruption, as the paper describes for the Driveco data:
	// 1. two points swap their device ids (counter glitch);
	tr.Points[3].PointID, tr.Points[4].PointID = tr.Points[4].PointID, tr.Points[3].PointID
	// 2. a GPS spike throws one position 5 km off;
	spike := tr.Points[7]
	spike.PointID = 99
	spike.Pos = geo.V(spike.Pos.X+5000, spike.Pos.Y-3000)
	spike.Time = tr.Points[7].Time.Add(3 * time.Second)
	tr.Points = append(tr.Points, spike)
	// 3. one record is lost in transmission, leaving a 40 s hole;
	tr.Points = append(tr.Points[:10], tr.Points[11:]...)
	// 4. transmission latency shuffles the arrival order.
	rng.Shuffle(len(tr.Points), func(i, j int) {
		tr.Points[i], tr.Points[j] = tr.Points[j], tr.Points[i]
	})

	fmt.Printf("as received : %d points, path length in arrival order %.0f m\n",
		len(tr.Points), trace.PathLength(tr.Points))

	r := clean.Repair(&tr, clean.Config{})
	fmt.Printf("\ncleaning chose the %s ordering\n", r.ChosenOrder)
	fmt.Printf("  length sorted by id:        %.0f m\n", r.LengthByID)
	fmt.Printf("  length sorted by timestamp: %.0f m\n", r.LengthByTime)
	fmt.Printf("  dropped %d invalid point(s) (the spike)\n", r.Dropped)
	fmt.Printf("  cleaned length %.0f m vs truth %.0f m\n",
		trace.PathLength(r.Trip.Points), wantLen)

	// Gap restoration (Jiang et al. [17]): the lost record left a 40 s
	// hole; interpolation fills moderate gaps for smoother analysis.
	restoredTrip, restored := clean.Interpolate(r.Trip, clean.InterpolateConfig{
		MaxGap: 30 * time.Second, MaxRestorable: 2 * time.Minute, Step: 15 * time.Second,
	})
	fmt.Printf("\ninterpolation restored %d point(s); final trip has %d points\n",
		restored, len(restoredTrip.Points))
	for i := 1; i < len(restoredTrip.Points); i++ {
		a, b := restoredTrip.Points[i-1], restoredTrip.Points[i]
		if b.Time.Before(a.Time) || b.FuelMl < a.FuelMl {
			log.Fatal("monotonicity violated — cleaning failed")
		}
	}
	fmt.Println("all ids, timestamps and cumulative measurements increase monotonically")
}
