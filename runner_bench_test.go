package taxitrace

// Fleet-runner benchmarks: whole-fleet wall time under 1, 4 and
// GOMAXPROCS workers, consumed both as the batch Result and as the
// event stream. `make bench-runner` runs these and snapshots the
// medians into results/BENCH_runner.json via cmd/benchfmt.

import (
	"context"
	"fmt"
	"runtime"
	"testing"

	"repro/internal/core"
	"repro/internal/tracegen"
)

// benchFleetPipeline builds one pipeline per worker setting; iterations
// share it, so the router cache is warm for all but the first pass —
// matching how a long-lived service would run repeated fleets.
func benchFleetPipeline(b *testing.B, workers int) *core.Pipeline {
	b.Helper()
	p, err := core.NewPipeline(core.Config{
		CitySeed: 42,
		Fleet: tracegen.Config{
			Seed:            42,
			Cars:            8,
			TripsPerCar:     30,
			GateRunFraction: 0.25,
		},
		Workers: workers,
	})
	if err != nil {
		b.Fatal(err)
	}
	return p
}

func BenchmarkFleetRunner(b *testing.B) {
	seen := map[int]bool{}
	for _, w := range []int{1, 4, runtime.GOMAXPROCS(0)} {
		if seen[w] {
			continue // GOMAXPROCS may coincide with a fixed size
		}
		seen[w] = true
		w := w
		b.Run(fmt.Sprintf("workers=%d/batch", w), func(b *testing.B) {
			p := benchFleetPipeline(b, w)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := p.RunContext(context.Background())
				if err != nil {
					b.Fatal(err)
				}
				if len(res.Cars) != 8 {
					b.Fatalf("incomplete fleet: %d cars", len(res.Cars))
				}
			}
		})
		b.Run(fmt.Sprintf("workers=%d/stream", w), func(b *testing.B) {
			p := benchFleetPipeline(b, w)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				st := p.Stream(context.Background())
				cars := 0
				for ev := range st.Events() {
					if ev.Err != nil {
						b.Fatal(ev.Err)
					}
					cars++
				}
				if err := st.Err(); err != nil {
					b.Fatal(err)
				}
				if cars != 8 {
					b.Fatalf("incomplete fleet: %d cars", cars)
				}
			}
		})
	}
}
